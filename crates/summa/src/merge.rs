//! Merging the intermediate products of Sparse SUMMA.
//!
//! Each SUMMA stage `k` produces an intermediate `A_ik · B_kj` for the
//! local output block; the block's final value is their elementwise sum.
//! Two *schedules* decide when merge operations happen:
//!
//! * **Multiway merge** (original HipMCL): hold all `k = √P` lists until
//!   the stages finish, then one `k`-way merge — every intermediate stays
//!   resident and nothing can overlap.
//! * **Binary merge** (§IV, Algorithm 2): push lists as they arrive and
//!   merge on even-numbered stages with a stack whose shape mirrors merge
//!   sort ([`algorithm2_merge_count`]). Work is a `lg lg k` factor worse,
//!   but merges happen *while the next stage computes*, and because early
//!   merges compress duplicates, the largest single merge holds fewer
//!   elements than the multiway merge's all-at-once set (the 15–25 %
//!   peak-memory win of Table III).
//!
//! Orthogonally, each individual merge *operation* runs one of five
//! kernels, selected per merge by [`select_merge_kernel`], which
//! evaluates [`MachineModel::merge_time_with`] for the merge's fan-in and
//! element count (the merge-side analogue of the `cf`-based SpGEMM kernel
//! selector):
//!
//! * [`MergeKernel::Heap`] / [`MergeKernel::Pairwise`] /
//!   [`MergeKernel::Hash`] — the original trio, each materializing a
//!   fresh [`Csc`] per merge op (kept as ablation baselines);
//! * [`MergeKernel::BrMerge`] — BRMerge-style single-pass k-cursor
//!   merge (arXiv:2206.06611) appending into a reusable [`SlabBuf`]
//!   checked out of a [`MergeArena`]: per-column upper bounds are
//!   prefix-summed to carve disjoint per-thread regions, columns merge
//!   in parallel (two cursors at fan-in 2, a register-resident min-scan
//!   over k cursor heads above) writing compactly at each region's
//!   cursor, and the result stays staged until materialization — no
//!   per-op allocation or compaction pass;
//! * [`MergeKernel::SpAdd`] — Hussain-style parallel SpAdd
//!   (arXiv:2112.10223): contiguous per-thread column partitions, each
//!   thread accumulating through an epoch-stamped dense sparse
//!   accumulator (`SpaScratch`) sized from the column-nnz upper bracket,
//!   also writing into arena slack.
//!
//! All five produce **bit-identical** output: they accumulate coincident
//! entries strictly in list order with the semiring's `⊕` and drop
//! entries whose final value is the semiring's annihilator (exactly `0.0`
//! for plus-times, `+∞` for min-plus, `false` for boolean), so kernel
//! choice can never change a result — in any semiring (property-tested
//! below for plus-times, min-plus and boolean):
//!
//! ```
//! use hipmcl_comm::MergeKernel;
//! use hipmcl_sparse::{Csc, PlusTimes};
//! use hipmcl_summa::merge::merge_with;
//!
//! let s = PlusTimes::<f64>::new();
//! let a = Csc::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]);
//! let b = Csc::from_parts(2, 2, vec![0, 2, 2], vec![0, 1], vec![3.0, 4.0]);
//! let want = merge_with(s, MergeKernel::Heap, &[a.clone(), b.clone()], (2, 2));
//! for kernel in MergeKernel::all() {
//!     assert_eq!(merge_with(s, kernel, &[a.clone(), b.clone()], (2, 2)), want);
//! }
//! ```
//!
//! The arena lifecycle: [`MergeArena`] owns a free list of [`SlabBuf`]s
//! plus the shared prefix/count/SPA scratch; every merge within a phase
//! checks buffers out ([`MergeArena::acquire`]) and returns consumed
//! inputs ([`MergeArena::release`]), so steady state allocates nothing.
//! The pipeline holds one arena per merge lane in an [`ArenaPool`]
//! (created once per SUMMA run, sized by `Executor::merge_lane_count`)
//! and only materializes a real [`Csc`] once per phase at drain time.
//!
//! Virtual-time accounting does **not** live here: a merge is an
//! [`Executor`](crate::executor::Executor) task, submitted by the pipeline
//! through `Executor::submit_merge` and timed on the executor's worker
//! timelines like any kernel launch. This module only provides the real
//! merging work, the Algorithm 2 schedule, and the [`MergeSpan`] record
//! type the pipeline surfaces per merge.

use hipmcl_comm::{MachineModel, MergeKernel};
use hipmcl_sparse::csc::counts_to_colptr;
use hipmcl_sparse::{Csc, Idx, PlusTimes, Semiring, Value};
use rayon::prelude::*;

/// Which merging schedule a SUMMA run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Defer everything, one k-way merge at the end (original HipMCL).
    Multiway,
    /// Algorithm 2: incremental stack merges on even stages.
    Binary,
}

/// How the kernel of each individual merge operation is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MergeKernelPolicy {
    /// Per merge, pick the kernel the machine model rates cheapest for
    /// the merge's fan-in and element count ([`select_merge_kernel`]).
    #[default]
    Auto,
    /// Force one kernel for every merge (ablations and baselines).
    Fixed(MergeKernel),
}

/// Picks the cheapest merge kernel for a `ways`-way merge of
/// `total_elems` elements by evaluating the machine model's cost curves
/// ([`MachineModel::merge_time_with`]) — the documented selection rule:
///
/// * fan-in 2–5 → [`MergeKernel::BrMerge`] (the arena-backed
///   single-pass k-cursor merge's `0.3 · (k − 1)` beats every
///   alternative until the linear min-scan over the cursor heads
///   catches up);
/// * fan-in ≥ 6 with enough elements → [`MergeKernel::SpAdd`]
///   (fan-in-independent accumulation once `lg k` exceeds the SPA's
///   per-element constant, mirroring the SpGEMM heap/hash crossover);
/// * fan-in ≥ 6 with too few elements to amortize the SPA setup →
///   [`MergeKernel::BrMerge`] while its min-scan stays under the heap's
///   `lg k` (through fan-in ~13), [`MergeKernel::Heap`] beyond
///   (cache-resident cursors, no setup).
///
/// [`MergeKernel::Pairwise`] and [`MergeKernel::Hash`] are dominated by
/// their arena-backed successors at every `(total, ways)` point and are
/// never auto-selected — they survive as `Fixed(...)` ablation baselines.
/// Ties resolve toward the heap (the listed order).
pub fn select_merge_kernel(model: &MachineModel, total_elems: u64, ways: usize) -> MergeKernel {
    MergeKernel::all()
        .into_iter()
        .min_by(|a, b| {
            model
                .merge_time_with(*a, total_elems, ways)
                .partial_cmp(&model.merge_time_with(*b, total_elems, ways))
                .expect("merge times are finite")
        })
        .expect("at least one kernel")
}

/// One merge operation as it ran on an executor worker timeline — the
/// per-merge observability record surfaced in `SummaOutput::merge_spans`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergeSpan {
    /// Virtual time the merge started executing on its lane.
    pub start: f64,
    /// Virtual time the merged slab became available.
    pub end: f64,
    /// The kernel that ran it.
    pub kernel: MergeKernel,
    /// Fan-in (number of lists merged).
    pub ways: usize,
    /// Total input elements passing through the merge.
    pub elems: u64,
    /// Index of the worker lane (socket) it occupied.
    pub lane: usize,
    /// The lane submission-time pinning would have chosen (the task's
    /// origin queue; equals `lane` unless the merge was stolen).
    pub origin: usize,
    /// Whether the occupying lane stole the task from its origin queue
    /// (only under `StealPolicy::CostAware`).
    pub stolen: bool,
    /// Wall seconds the real merge compute took on the host, sampled
    /// only under `TimeModel::Measured` (`0.0` under `Modeled`, which
    /// never reads the host clock). Independent of the modeled
    /// [`duration`](Self::duration) on the lane.
    pub measured_s: f64,
}

impl MergeSpan {
    /// Seconds the merge occupied its lane.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

// ---------------------------------------------------------------------------
// Column views and arena buffers
// ---------------------------------------------------------------------------

/// A borrowed CSC-shaped column view — the common input face of every
/// merge kernel, constructible from both an owned [`Csc`] and an
/// arena-resident [`SlabBuf`], so one kernel implementation serves the
/// materialized and the arena paths alike.
#[derive(Clone, Copy)]
pub struct ColsRef<'a, T: Value> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    /// Compact layout: column `j` spans `colptr[j]..colptr[j + 1]`.
    /// Empty for staged views.
    colptr: &'a [usize],
    /// Ragged (staged) layout: column `j` spans
    /// `start[j]..start[j] + cnt[j]`, with slack between runs. Empty for
    /// compact views; exactly one of the two layouts is populated.
    start: &'a [usize],
    cnt: &'a [usize],
    rowidx: &'a [Idx],
    vals: &'a [T],
}

impl<'a, T: Value> ColsRef<'a, T> {
    /// Views an owned CSC matrix.
    pub fn of(m: &'a Csc<T>) -> Self {
        Self {
            nrows: m.nrows(),
            ncols: m.ncols(),
            nnz: m.nnz(),
            colptr: &m.colptr,
            start: &[],
            cnt: &[],
            rowidx: &m.rowidx,
            vals: &m.vals,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Where column `j`'s entries live in `rowidx`/`vals`.
    #[inline]
    fn col_span(&self, j: usize) -> (usize, usize) {
        if self.cnt.is_empty() {
            (self.colptr[j], self.colptr[j + 1])
        } else {
            (self.start[j], self.start[j] + self.cnt[j])
        }
    }

    /// Stored entries in column `j`.
    pub fn col_nnz(&self, j: usize) -> usize {
        let (lo, hi) = self.col_span(j);
        hi - lo
    }

    /// Row indices of column `j`.
    pub fn col_rows(&self, j: usize) -> &'a [Idx] {
        let (lo, hi) = self.col_span(j);
        &self.rowidx[lo..hi]
    }

    /// Values of column `j`.
    pub fn col_vals(&self, j: usize) -> &'a [T] {
        let (lo, hi) = self.col_span(j);
        &self.vals[lo..hi]
    }

    /// Materializes the view as an owned (compact) CSC matrix.
    pub fn to_csc(&self) -> Csc<T> {
        if self.cnt.is_empty() {
            return Csc::from_parts(
                self.nrows,
                self.ncols,
                self.colptr.to_vec(),
                self.rowidx.to_vec(),
                self.vals.to_vec(),
            );
        }
        let mut colptr = Vec::with_capacity(self.ncols + 1);
        colptr.push(0);
        let mut rowidx = Vec::with_capacity(self.nnz);
        let mut vals = Vec::with_capacity(self.nnz);
        for j in 0..self.ncols {
            rowidx.extend_from_slice(self.col_rows(j));
            vals.extend_from_slice(self.col_vals(j));
            colptr.push(rowidx.len());
        }
        Csc::from_parts(self.nrows, self.ncols, colptr, rowidx, vals)
    }
}

/// A **staged** CSC-shaped buffer owned by a [`MergeArena`]: the output
/// of an arena-backed merge. Each column is sorted, deduplicated and
/// annihilator-free like a [`Csc`] column, but lives at an explicit
/// offset (`start[j]`, run length `cnt[j]`) rather than at a prefix-sum
/// position: merge kernels write each parallel chunk's columns
/// compactly from the chunk's base, leaving gaps only *between* chunks
/// (none at all single-threaded). A merge never pays a compaction pass
/// just so the next merge can read it — downstream kernels consume the
/// staged layout directly through [`SlabBuf::as_cols`], and the single
/// compaction happens at materialization ([`SlabBuf::into_csc`]). The
/// vectors keep their length and capacity between merges (grow-only raw
/// storage; stale tails are unreachable because `start`/`cnt` are
/// re-recorded per merge): the whole point of the arena path is that
/// these are reused, not reallocated or re-zeroed, across every merge
/// op of a phase.
#[derive(Debug, Default)]
pub struct SlabBuf<T: Value> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    start: Vec<usize>,
    cnt: Vec<usize>,
    rowidx: Vec<Idx>,
    vals: Vec<T>,
}

impl<T: Value> SlabBuf<T> {
    /// Stored entries (excluding staging slack).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Views the buffer's columns (the merge-kernel input face).
    pub fn as_cols(&self) -> ColsRef<'_, T> {
        ColsRef {
            nrows: self.nrows,
            ncols: self.ncols,
            nnz: self.nnz,
            colptr: &[],
            start: &self.start,
            cnt: &self.cnt,
            rowidx: &self.rowidx,
            vals: &self.vals,
        }
    }

    /// Records the staged layout after a merge: column `j`'s run of
    /// `counts[j]` entries sits at offset `ub[j]`. Copies the slices —
    /// they are arena scratch the next merge is free to clobber.
    fn set_staged(&mut self, ub: &[usize], counts: &[usize]) {
        self.start.clear();
        self.start.extend_from_slice(ub);
        self.cnt.clear();
        self.cnt.extend_from_slice(counts);
        self.nnz = counts.iter().sum();
    }

    /// Copies the contents out as an owned, exactly-sized CSC matrix,
    /// leaving the buffer (and its capacity) intact for reuse. This is
    /// the once-per-phase materialization the pipeline performs at drain
    /// time before releasing the buffer back to its arena.
    pub fn to_csc(&self) -> Csc<T> {
        self.as_cols().to_csc()
    }

    /// Consumes the buffer into a CSC matrix, compacting the staged runs
    /// in place (safe left-to-right: the write cursor never passes a
    /// run's staged start, since `Σ cnt[<j] ≤ start[j]`). The vectors
    /// keep their slack capacity. Used where no arena outlives the
    /// merge.
    pub fn into_csc(mut self) -> Csc<T> {
        let mut colptr = Vec::with_capacity(self.ncols + 1);
        colptr.push(0);
        let mut w = 0usize;
        for j in 0..self.ncols {
            let (s, c) = (self.start[j], self.cnt[j]);
            if s != w && c > 0 {
                self.rowidx.copy_within(s..s + c, w);
                self.vals.copy_within(s..s + c, w);
            }
            w += c;
            colptr.push(w);
        }
        self.rowidx.truncate(w);
        self.vals.truncate(w);
        Csc::from_parts(self.nrows, self.ncols, colptr, self.rowidx, self.vals)
    }
}

/// Per-thread scratch of the parallel SpAdd kernel: an epoch-stamped
/// dense sparse accumulator (SPA). `stamp[r] == epoch` marks row `r` as
/// live in the current column with its entry at `pairs[slot[r]]`;
/// bumping `epoch` clears the whole SPA in O(1). All three vectors are
/// reused across columns, merges and phases.
#[derive(Debug, Default)]
struct SpaScratch<T: Value> {
    stamp: Vec<u32>,
    slot: Vec<u32>,
    epoch: u32,
    pairs: Vec<(Idx, T)>,
}

impl<T: Value> SpaScratch<T> {
    /// Grows the dense arrays to cover `nrows` rows (never shrinks).
    fn ensure_rows(&mut self, nrows: usize) {
        if self.stamp.len() < nrows {
            self.stamp.resize(nrows, 0);
            self.slot.resize(nrows, 0);
        }
    }

    /// Opens a new column: O(1) clear via epoch bump, with a full reset
    /// at the (astronomically rare) wraparound.
    fn begin_column(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.pairs.clear();
    }
}

/// Reusable merge scratch for one merge lane: a free list of
/// [`SlabBuf`]s plus the shared per-merge scratch (column upper-bound
/// prefix, per-column counts, per-thread SPAs). Acquire/release is LIFO;
/// nothing ever shrinks, so after the first merge of a phase the hot
/// loop performs no allocation — and nothing ever grows past twice the
/// largest single merge either ([`MergeArena::assert_no_capacity_leak`],
/// debug-asserted on every release).
///
/// ```
/// use hipmcl_summa::merge::MergeArena;
///
/// let mut arena: MergeArena<f64> = MergeArena::new();
/// let a = arena.acquire((4, 4));
/// arena.release(a);
/// // The released buffer is recycled, not reallocated.
/// assert_eq!(arena.free_bufs(), 1);
/// let _b = arena.acquire((4, 4));
/// assert_eq!(arena.free_bufs(), 0);
/// ```
#[derive(Debug, Default)]
pub struct MergeArena<T: Value> {
    free: Vec<SlabBuf<T>>,
    ub: Vec<usize>,
    starts: Vec<usize>,
    counts: Vec<usize>,
    spa: Vec<SpaScratch<T>>,
    peak_request: usize,
}

impl<T: Value> MergeArena<T> {
    /// An empty arena; everything is grown lazily by the first merges.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks a buffer out of the free list (or creates an empty one),
    /// shaped for a `shape` output. The buffer's vectors keep whatever
    /// capacity previous merges grew them to — `rowidx`/`vals` also keep
    /// their *length*: they are raw storage the kernels grow-only-resize
    /// and overwrite per run, so steady state never pays a zero-fill
    /// (stale content is unreachable — reads go through `start`/`cnt`,
    /// which are reset here).
    pub fn acquire(&mut self, shape: (usize, usize)) -> SlabBuf<T> {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.nrows = shape.0;
        buf.ncols = shape.1;
        buf.nnz = 0;
        buf.start.clear();
        buf.cnt.clear();
        buf
    }

    /// Returns a consumed buffer to the free list for reuse. In debug
    /// builds this asserts the no-capacity-leak invariant: amortized
    /// `Vec` growth bounds every buffer by twice the largest single
    /// merge request this arena ever served.
    pub fn release(&mut self, buf: SlabBuf<T>) {
        debug_assert!(
            buf.rowidx.capacity() <= self.capacity_bound(),
            "arena buffer capacity {} leaked past the 2×peak bound {}",
            buf.rowidx.capacity(),
            self.capacity_bound(),
        );
        self.free.push(buf);
    }

    /// Largest upper-bound element count any single merge requested from
    /// this arena — the capacity high-water mark the no-leak invariant
    /// is phrased against.
    pub fn peak_request(&self) -> usize {
        self.peak_request
    }

    /// Number of buffers currently parked in the free list.
    pub fn free_bufs(&self) -> usize {
        self.free.len()
    }

    /// Largest element capacity held by any parked buffer.
    pub fn capacity_elems(&self) -> usize {
        self.free
            .iter()
            .map(|b| b.rowidx.capacity())
            .max()
            .unwrap_or(0)
    }

    /// The bound the no-leak invariant allows: amortized doubling means
    /// a `Vec` grown only by requests `≤ peak` stays `< 2 · peak` (with
    /// a small floor for tiny arenas).
    fn capacity_bound(&self) -> usize {
        2 * self.peak_request.max(32)
    }

    /// Asserts (in all build profiles) that no parked buffer or scratch
    /// vector outgrew the 2×-peak bound — reuse across phases must not
    /// ratchet capacity. The pipeline debug-asserts this after every
    /// phase drain; tests call it directly.
    pub fn assert_no_capacity_leak(&self) {
        let bound = self.capacity_bound();
        for b in &self.free {
            assert!(
                b.rowidx.capacity() <= bound && b.vals.capacity() <= bound,
                "parked buffer capacity {} exceeds 2×peak bound {}",
                b.rowidx.capacity().max(b.vals.capacity()),
                bound
            );
        }
        for s in &self.spa {
            assert!(
                s.pairs.capacity() <= bound,
                "SPA pair capacity {} exceeds 2×peak bound {}",
                s.pairs.capacity(),
                bound
            );
        }
    }
}

/// One [`MergeArena`] per merge lane (socket): the pipeline creates a
/// pool sized by `Executor::merge_lane_count` once per SUMMA run, and
/// every merge op borrows the arena of the lane the scheduler placed it
/// on — stolen merges included, since the output buffer lives wherever
/// the merge actually ran.
#[derive(Debug, Default)]
pub struct ArenaPool<T: Value> {
    lanes: Vec<MergeArena<T>>,
}

impl<T: Value> ArenaPool<T> {
    /// A pool with one arena per merge lane.
    pub fn with_lanes(n: usize) -> Self {
        let mut lanes = Vec::with_capacity(n);
        lanes.resize_with(n.max(1), MergeArena::new);
        Self { lanes }
    }

    /// Number of lane arenas.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The arena of lane `lane`, growing the pool if an executor reports
    /// more lanes than the pool was sized for.
    pub fn lane_mut(&mut self, lane: usize) -> &mut MergeArena<T> {
        if lane >= self.lanes.len() {
            self.lanes.resize_with(lane + 1, MergeArena::new);
        }
        &mut self.lanes[lane]
    }

    /// Largest single-merge request over all lanes.
    pub fn peak_request(&self) -> usize {
        self.lanes
            .iter()
            .map(MergeArena::peak_request)
            .max()
            .unwrap_or(0)
    }

    /// [`MergeArena::assert_no_capacity_leak`] over every lane.
    pub fn assert_no_capacity_leak(&self) {
        for lane in &self.lanes {
            lane.assert_no_capacity_leak();
        }
    }
}

/// A slab on a merge stack: either a stage product still in its
/// materialized [`Csc`] form (as produced by the SpGEMM kernels) or an
/// arena-resident [`SlabBuf`] written by a previous arena-backed merge.
/// Both expose the same [`ColsRef`] face to the kernels.
#[derive(Debug)]
pub enum MergeSlab<T: Value> {
    /// An owned, exactly-sized CSC matrix.
    Mat(Csc<T>),
    /// An arena buffer with slack capacity, to be released after use.
    Buf(SlabBuf<T>),
}

impl<T: Value> MergeSlab<T> {
    /// Stored entries.
    pub fn nnz(&self) -> usize {
        match self {
            MergeSlab::Mat(m) => m.nnz(),
            MergeSlab::Buf(b) => b.nnz(),
        }
    }

    /// The kernels' input view.
    pub fn as_cols(&self) -> ColsRef<'_, T> {
        match self {
            MergeSlab::Mat(m) => ColsRef::of(m),
            MergeSlab::Buf(b) => b.as_cols(),
        }
    }

    /// Materializes into an owned CSC, releasing an arena buffer back to
    /// `arena` (the once-per-phase drain step).
    pub fn into_csc(self, arena: &mut MergeArena<T>) -> Csc<T> {
        match self {
            MergeSlab::Mat(m) => m,
            MergeSlab::Buf(b) => {
                let out = b.to_csc();
                arena.release(b);
                out
            }
        }
    }

    /// Releases an arena-resident slab back to `arena`; materialized
    /// slabs just drop.
    pub fn recycle(self, arena: &mut MergeArena<T>) {
        if let MergeSlab::Buf(b) = self {
            arena.release(b);
        }
    }
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

/// A single k-way merge kernel: sums equally-shaped CSC matrices. All
/// implementations accumulate coincident entries in list order and drop
/// entries whose final value is the semiring's annihilator, making their
/// outputs bit-identical (see the module docs). The trait is the
/// `f64`/plus-times face kept for the benches and the exact symbolic
/// estimator; the pipeline dispatches statically through [`merge_with`]
/// so any [`Semiring`] can drive the same five kernels.
pub trait MergeAlgo {
    /// Which kernel this is (for spans and model lookup).
    fn kind(&self) -> MergeKernel;
    /// Merges `mats` (all of shape `shape`); an empty slice yields an
    /// empty matrix of that shape.
    fn merge(&self, mats: &[Csc<f64>], shape: (usize, usize)) -> Csc<f64>;
}

/// Cursor-based k-way heap merge (original HipMCL's accumulator).
pub struct HeapMerge;
/// Left-fold of two-way cursor merges.
pub struct PairwiseMerge;
/// SpAdd-style per-column hash accumulation.
pub struct HashMerge;
/// BRMerge-style single-pass k-cursor merge into arena slack
/// (arXiv:2206.06611).
pub struct BrMergeAccum;
/// Hussain-style parallel SpAdd through epoch-stamped SPAs
/// (arXiv:2112.10223).
pub struct SpAddMerge;

/// The implementation behind a [`MergeKernel`] tag.
pub fn merge_algo(kernel: MergeKernel) -> &'static dyn MergeAlgo {
    match kernel {
        MergeKernel::Heap => &HeapMerge,
        MergeKernel::Pairwise => &PairwiseMerge,
        MergeKernel::Hash => &HashMerge,
        MergeKernel::BrMerge => &BrMergeAccum,
        MergeKernel::SpAdd => &SpAddMerge,
    }
}

/// Runs the selected merge kernel in the given semiring — the statically
/// dispatched generic entry the pipeline uses (a `dyn MergeAlgo` cannot
/// carry a semiring type parameter). All five kernels accumulate
/// coincident entries strictly in list order with [`Semiring::add`] and
/// drop entries whose final value is the annihilator
/// ([`Semiring::is_annihilator`]), so for any semiring the kernel choice
/// never changes the result — the bit-identity property the plus-times
/// path has always had, extended verbatim. The arena kernels run against
/// a throwaway arena here; the pipeline and [`StackMerger`] instead call
/// [`brmerge_into`] / [`spadd_into`] with a persistent one.
pub fn merge_with<S: Semiring>(
    s: S,
    kernel: MergeKernel,
    mats: &[Csc<S::Elem>],
    shape: (usize, usize),
) -> Csc<S::Elem> {
    for mat in mats {
        assert_eq!((mat.nrows(), mat.ncols()), shape, "merge shape mismatch");
    }
    let refs: Vec<ColsRef<'_, S::Elem>> = mats.iter().map(ColsRef::of).collect();
    merge_refs_with(s, kernel, &refs, shape)
}

/// [`merge_with`] over borrowed column views — the form the arena paths
/// use, since a [`SlabBuf`] has no `Csc` to lend.
pub fn merge_refs_with<S: Semiring>(
    s: S,
    kernel: MergeKernel,
    mats: &[ColsRef<'_, S::Elem>],
    shape: (usize, usize),
) -> Csc<S::Elem> {
    if let Some(t) = merge_refs_trivial(mats, shape) {
        return t;
    }
    match kernel {
        MergeKernel::Heap => assemble(
            shape,
            (0..shape.1)
                .into_par_iter()
                .map(|j| merge_column(s, mats, j))
                .collect(),
        ),
        MergeKernel::Pairwise => {
            let mut acc = two_way_merge(s, mats[0], mats[1], shape);
            for m in &mats[2..] {
                acc = two_way_merge(s, ColsRef::of(&acc), *m, shape);
            }
            acc
        }
        MergeKernel::Hash => assemble(
            shape,
            (0..shape.1)
                .into_par_iter()
                .map(|j| hash_column(s, mats, j))
                .collect(),
        ),
        MergeKernel::BrMerge => {
            let mut arena = MergeArena::new();
            brmerge_into(s, mats, shape, &mut arena).into_csc()
        }
        MergeKernel::SpAdd => {
            let mut arena = MergeArena::new();
            spadd_into(s, mats, shape, &mut arena).into_csc()
        }
    }
}

/// Checks shapes and handles the 0- and 1-input fast paths shared by all
/// kernels; returns `None` when a real merge is needed.
fn merge_refs_trivial<T: Value>(mats: &[ColsRef<'_, T>], shape: (usize, usize)) -> Option<Csc<T>> {
    for mat in mats {
        assert_eq!((mat.nrows(), mat.ncols()), shape, "merge shape mismatch");
    }
    match mats.len() {
        // A zero-flops phase produces nothing to merge; the configured
        // output shape keeps the pipeline alive instead of panicking.
        0 => Some(Csc::zero(shape.0, shape.1)),
        1 => Some(mats[0].to_csc()),
        _ => None,
    }
}

/// Assembles per-column `(rows, vals)` outputs into a CSC matrix.
fn assemble<T: Value>(shape: (usize, usize), cols: Vec<(Vec<Idx>, Vec<T>)>) -> Csc<T> {
    let (m, n) = shape;
    let counts: Vec<usize> = cols.iter().map(|(r, _)| r.len()).collect();
    let colptr = counts_to_colptr(&counts);
    let nnz = colptr[n];
    let mut rowidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for (r, v) in cols {
        rowidx.extend_from_slice(&r);
        vals.extend_from_slice(&v);
    }
    Csc::from_parts(m, n, colptr, rowidx, vals)
}

impl MergeAlgo for HeapMerge {
    fn kind(&self) -> MergeKernel {
        MergeKernel::Heap
    }

    fn merge(&self, mats: &[Csc<f64>], shape: (usize, usize)) -> Csc<f64> {
        merge_with(PlusTimes::<f64>::new(), MergeKernel::Heap, mats, shape)
    }
}

impl MergeAlgo for PairwiseMerge {
    fn kind(&self) -> MergeKernel {
        MergeKernel::Pairwise
    }

    fn merge(&self, mats: &[Csc<f64>], shape: (usize, usize)) -> Csc<f64> {
        merge_with(PlusTimes::<f64>::new(), MergeKernel::Pairwise, mats, shape)
    }
}

impl MergeAlgo for HashMerge {
    fn kind(&self) -> MergeKernel {
        MergeKernel::Hash
    }

    fn merge(&self, mats: &[Csc<f64>], shape: (usize, usize)) -> Csc<f64> {
        merge_with(PlusTimes::<f64>::new(), MergeKernel::Hash, mats, shape)
    }
}

impl MergeAlgo for BrMergeAccum {
    fn kind(&self) -> MergeKernel {
        MergeKernel::BrMerge
    }

    fn merge(&self, mats: &[Csc<f64>], shape: (usize, usize)) -> Csc<f64> {
        merge_with(PlusTimes::<f64>::new(), MergeKernel::BrMerge, mats, shape)
    }
}

impl MergeAlgo for SpAddMerge {
    fn kind(&self) -> MergeKernel {
        MergeKernel::SpAdd
    }

    fn merge(&self, mats: &[Csc<f64>], shape: (usize, usize)) -> Csc<f64> {
        merge_with(PlusTimes::<f64>::new(), MergeKernel::SpAdd, mats, shape)
    }
}

/// K-way merges equally-shaped CSC matrices with the heap kernel (kept as
/// a named entry point: the exact symbolic estimator and the benches call
/// it directly). An empty slice returns an empty matrix of `shape`.
pub fn kway_merge(mats: &[Csc<f64>], shape: (usize, usize)) -> Csc<f64> {
    kway_merge_in(PlusTimes::<f64>::new(), mats, shape)
}

/// [`kway_merge`] in an arbitrary semiring (the heap kernel).
pub fn kway_merge_in<S: Semiring>(
    s: S,
    mats: &[Csc<S::Elem>],
    shape: (usize, usize),
) -> Csc<S::Elem> {
    merge_with(s, MergeKernel::Heap, mats, shape)
}

/// Left-fold of two-way cursor merges in an arbitrary semiring. The left
/// fold keeps the accumulation order identical to the heap's list-order
/// tie-breaking: after i folds the accumulator holds
/// `v_0 ⊕ v_1 ⊕ … ⊕ v_i` exactly as the heap would have combined it.
pub fn pairwise_merge_in<S: Semiring>(
    s: S,
    mats: &[Csc<S::Elem>],
    shape: (usize, usize),
) -> Csc<S::Elem> {
    merge_with(s, MergeKernel::Pairwise, mats, shape)
}

/// Per-column hash accumulation in an arbitrary semiring.
pub fn hash_merge_in<S: Semiring>(
    s: S,
    mats: &[Csc<S::Elem>],
    shape: (usize, usize),
) -> Csc<S::Elem> {
    merge_with(s, MergeKernel::Hash, mats, shape)
}

/// Heap-merges column `j` across all matrices.
fn merge_column<S: Semiring>(
    _s: S,
    mats: &[ColsRef<'_, S::Elem>],
    j: usize,
) -> (Vec<Idx>, Vec<S::Elem>) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut heap: BinaryHeap<Reverse<(Idx, usize)>> = BinaryHeap::with_capacity(mats.len());
    let mut pos: Vec<usize> = vec![0; mats.len()];
    for (l, mat) in mats.iter().enumerate() {
        if let Some(&r) = mat.col_rows(j).first() {
            heap.push(Reverse((r, l)));
        }
    }
    let mut rows = Vec::new();
    let mut vals: Vec<S::Elem> = Vec::new();
    while let Some(Reverse((r, l))) = heap.pop() {
        let v = mats[l].col_vals(j)[pos[l]];
        if rows.last() == Some(&r) {
            let acc = vals.last_mut().unwrap();
            *acc = S::add(*acc, v);
        } else {
            // Drop a just-finished entry if it accumulated to the
            // annihilator (plus-times: cancelled to zero).
            if let Some(&last_v) = vals.last() {
                if S::is_annihilator(last_v) {
                    rows.pop();
                    vals.pop();
                }
            }
            rows.push(r);
            vals.push(v);
        }
        pos[l] += 1;
        let rcol = mats[l].col_rows(j);
        if pos[l] < rcol.len() {
            heap.push(Reverse((rcol[pos[l]], l)));
        }
    }
    if let Some(&last_v) = vals.last() {
        if S::is_annihilator(last_v) {
            rows.pop();
            vals.pop();
        }
    }
    (rows, vals)
}

/// Two-way cursor merge with the shared annihilator-drop rule,
/// materializing a fresh CSC (the legacy pairwise building block).
fn two_way_merge<S: Semiring>(
    _s: S,
    a: ColsRef<'_, S::Elem>,
    b: ColsRef<'_, S::Elem>,
    shape: (usize, usize),
) -> Csc<S::Elem> {
    let cols: Vec<(Vec<Idx>, Vec<S::Elem>)> = (0..shape.1)
        .into_par_iter()
        .map(|j| {
            let (ar, av) = (a.col_rows(j), a.col_vals(j));
            let (br, bv) = (b.col_rows(j), b.col_vals(j));
            let mut rows = Vec::with_capacity(ar.len() + br.len());
            let mut vals = Vec::with_capacity(ar.len() + br.len());
            let mut push = |r: Idx, v: S::Elem| {
                if !S::is_annihilator(v) {
                    rows.push(r);
                    vals.push(v);
                }
            };
            let (mut i, mut k) = (0, 0);
            while i < ar.len() && k < br.len() {
                match ar[i].cmp(&br[k]) {
                    std::cmp::Ordering::Less => {
                        push(ar[i], av[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        push(br[k], bv[k]);
                        k += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        push(ar[i], S::add(av[i], bv[k]));
                        i += 1;
                        k += 1;
                    }
                }
            }
            while i < ar.len() {
                push(ar[i], av[i]);
                i += 1;
            }
            while k < br.len() {
                push(br[k], bv[k]);
                k += 1;
            }
            (rows, vals)
        })
        .collect();
    assemble(shape, cols)
}

/// Hash-accumulates column `j` across all matrices, strictly in list
/// order, then sorts by row and drops annihilator entries.
fn hash_column<S: Semiring>(
    _s: S,
    mats: &[ColsRef<'_, S::Elem>],
    j: usize,
) -> (Vec<Idx>, Vec<S::Elem>) {
    use std::collections::HashMap;
    let cap: usize = mats.iter().map(|m| m.col_nnz(j)).sum();
    let mut slot: HashMap<Idx, usize> = HashMap::with_capacity(cap);
    let mut entries: Vec<(Idx, S::Elem)> = Vec::with_capacity(cap);
    for mat in mats {
        for (&r, &v) in mat.col_rows(j).iter().zip(mat.col_vals(j)) {
            match slot.entry(r) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let at = *e.get();
                    entries[at].1 = S::add(entries[at].1, v);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(entries.len());
                    entries.push((r, v));
                }
            }
        }
    }
    entries.sort_unstable_by_key(|&(r, _)| r);
    entries.retain(|&(_, v)| !S::is_annihilator(v));
    entries.into_iter().unzip()
}

// ---------------------------------------------------------------------------
// Arena-backed kernels (BRMerge + parallel SpAdd)
// ---------------------------------------------------------------------------

/// One thread's contiguous slice of the upper-bound staging area: columns
/// `cols`, whose elements occupy `rows`/`vals` (offset by `base` in the
/// global upper-bound layout). Within its slice a chunk writes columns
/// **compactly** from offset 0 — the upper bound only sizes the slice —
/// recording each column's produced start offset (global) in `starts`
/// and its size in `counts`. Compact-within-chunk staging means the
/// write traffic of a merge is its actual output, not the upper bound,
/// and a single-chunk merge comes out fully compact.
struct ColChunk<'s, T> {
    cols: std::ops::Range<usize>,
    base: usize,
    rows: &'s mut [Idx],
    vals: &'s mut [T],
    starts: &'s mut [usize],
    counts: &'s mut [usize],
}

/// Carves the staging buffers into per-thread chunks along column
/// boundaries of the upper-bound prefix `ub`.
fn carve_chunks<'s, T>(
    ncols: usize,
    nchunks: usize,
    ub: &[usize],
    mut rows: &'s mut [Idx],
    mut vals: &'s mut [T],
    mut starts: &'s mut [usize],
    mut counts: &'s mut [usize],
) -> Vec<ColChunk<'s, T>> {
    let mut out = Vec::with_capacity(nchunks);
    let mut c0 = 0;
    for w in 0..nchunks {
        let c1 = ((w + 1) * ncols) / nchunks;
        let elems = ub[c1] - ub[c0];
        let (r, rr) = rows.split_at_mut(elems);
        let (v, vr) = vals.split_at_mut(elems);
        let (s, sr) = starts.split_at_mut(c1 - c0);
        let (c, cr) = counts.split_at_mut(c1 - c0);
        out.push(ColChunk {
            cols: c0..c1,
            base: ub[c0],
            rows: r,
            vals: v,
            starts: s,
            counts: c,
        });
        rows = rr;
        vals = vr;
        starts = sr;
        counts = cr;
        c0 = c1;
    }
    out
}

/// Number of column partitions for the parallel arena kernels: one per
/// rayon worker, never more than there are columns.
fn partition_count(ncols: usize) -> usize {
    rayon::current_num_threads().max(1).min(ncols.max(1))
}

/// Appends `(r, v)` at write cursor `w` unless `v` is the annihilator —
/// the shared drop rule, applied to staged arena writes.
#[inline]
fn put_staged<S: Semiring>(
    rows: &mut [Idx],
    vals: &mut [S::Elem],
    w: &mut usize,
    r: Idx,
    v: S::Elem,
) {
    if !S::is_annihilator(v) {
        rows[*w] = r;
        vals[*w] = v;
        *w += 1;
    }
}

/// Two-cursor column merge into staged output — the fan-in-2 fast path
/// of [`brmerge_into`].
#[inline]
fn merge_two_cursors<S: Semiring>(
    (ar, av): (&[Idx], &[S::Elem]),
    (br, bv): (&[Idx], &[S::Elem]),
    rows: &mut [Idx],
    vals: &mut [S::Elem],
) -> usize {
    // Length equalities let the compiler collapse the paired row/val
    // bounds checks in the scan loops below.
    assert_eq!(ar.len(), av.len());
    assert_eq!(br.len(), bv.len());
    assert_eq!(rows.len(), vals.len());
    let mut w = 0usize;
    let (mut i, mut k) = (0, 0);
    // On a strict inequality the leading cursor's whole run below the
    // other head is emitted by a fused linear scan-and-copy: the
    // compare that detects the run end is the compare the copy loop
    // would do anyway, and the stream stays prefetch-friendly (a
    // binary search for the run end adds serially-dependent loads for
    // no saved work, since every element is touched by the copy).
    // Each element still passes the annihilator drop rule, preserving
    // bit-identity with the heap kernel.
    while i < ar.len() && k < br.len() {
        match ar[i].cmp(&br[k]) {
            std::cmp::Ordering::Less => {
                let b = br[k];
                while i < ar.len() && ar[i] < b {
                    put_staged::<S>(rows, vals, &mut w, ar[i], av[i]);
                    i += 1;
                }
            }
            std::cmp::Ordering::Greater => {
                let a = ar[i];
                while k < br.len() && br[k] < a {
                    put_staged::<S>(rows, vals, &mut w, br[k], bv[k]);
                    k += 1;
                }
            }
            std::cmp::Ordering::Equal => {
                put_staged::<S>(rows, vals, &mut w, ar[i], S::add(av[i], bv[k]));
                i += 1;
                k += 1;
            }
        }
    }
    while i < ar.len() {
        put_staged::<S>(rows, vals, &mut w, ar[i], av[i]);
        i += 1;
    }
    while k < br.len() {
        put_staged::<S>(rows, vals, &mut w, br[k], bv[k]);
        k += 1;
    }
    w
}

/// k-cursor column merge into staged output: one linear scan over the
/// cursor heads per step (cheaper than a heap for the small fan-ins this
/// kernel is selected at), accumulating coincident rows in list order.
/// `head[i]` caches cursor i's current row — `Idx::MAX` when exhausted
/// (a safe sentinel: row indices are < nrows < `Idx::MAX`) — so the scan
/// is a tight compare loop over a small array. The scan also tracks the
/// runner-up row: when a single cursor owns the minimum, its whole run
/// of rows below the runner-up is emitted without re-scanning the heads
/// (the BRMerge run-copy idea), which collapses the per-element cost to
/// one compare on low-overlap inputs. Each emitted element still passes
/// the annihilator drop rule, so the output stays bit-identical to the
/// heap kernel even for inputs carrying explicit annihilators.
#[inline]
fn merge_k_cursors<S: Semiring>(
    cur: &[(&[Idx], &[S::Elem])],
    pos: &mut [usize],
    head: &mut [Idx],
    rows: &mut [Idx],
    vals: &mut [S::Elem],
) -> usize {
    let k = cur.len();
    assert_eq!(rows.len(), vals.len());
    for i in 0..k {
        assert_eq!(cur[i].0.len(), cur[i].1.len());
        pos[i] = 0;
        head[i] = cur[i].0.first().copied().unwrap_or(Idx::MAX);
    }
    merge_k_cursors_body::<S>(cur, pos, head, rows, vals, k)
}

/// Fixed-fan-in front end of [`merge_k_cursors`]: `pos`/`head` are
/// const-sized arrays the compiler keeps in registers and the min-scan
/// fully unrolls, which is worth ~10% on the stack merger's dominant
/// 3- and 4-way merges. Same algorithm, bit-identical output.
#[inline]
fn merge_k_cursors_fixed<S: Semiring, const K: usize>(
    cur: &[(&[Idx], &[S::Elem])],
    rows: &mut [Idx],
    vals: &mut [S::Elem],
) -> usize {
    assert_eq!(cur.len(), K);
    assert_eq!(rows.len(), vals.len());
    let mut pos = [0usize; K];
    let mut head = [Idx::MAX; K];
    for i in 0..K {
        assert_eq!(cur[i].0.len(), cur[i].1.len());
        head[i] = cur[i].0.first().copied().unwrap_or(Idx::MAX);
    }
    merge_k_cursors_body::<S>(cur, &mut pos, &mut head, rows, vals, K)
}

#[inline(always)]
fn merge_k_cursors_body<S: Semiring>(
    cur: &[(&[Idx], &[S::Elem])],
    pos: &mut [usize],
    head: &mut [Idx],
    rows: &mut [Idx],
    vals: &mut [S::Elem],
    k: usize,
) -> usize {
    let mut w = 0usize;
    loop {
        // One pass: minimum, its owner, and the runner-up row. A tie for
        // the minimum leaves `min2 == min`, flagging coincident heads.
        let mut min = head[0];
        let mut arg = 0usize;
        let mut min2 = Idx::MAX;
        for (i, &h) in head.iter().enumerate().take(k).skip(1) {
            if h < min {
                min2 = min;
                min = h;
                arg = i;
            } else if h < min2 {
                min2 = h;
            }
        }
        if min == Idx::MAX {
            break;
        }
        if min < min2 {
            // Unique owner: every row of cursor `arg` below `min2` is
            // absent from all other lists — emit the run with a fused
            // linear scan-and-copy (the run-end compare doubles as the
            // copy-loop condition; no binary search).
            let (r, v) = cur[arg];
            let mut p = pos[arg];
            while p < r.len() && r[p] < min2 {
                put_staged::<S>(rows, vals, &mut w, r[p], v[p]);
                p += 1;
            }
            pos[arg] = p;
            head[arg] = r.get(p).copied().unwrap_or(Idx::MAX);
        } else {
            // Coincident heads: accumulate in list order.
            let mut acc: Option<S::Elem> = None;
            for i in 0..k {
                if head[i] == min {
                    let (r, v) = cur[i];
                    let x = v[pos[i]];
                    acc = Some(match acc {
                        None => x,
                        Some(a) => S::add(a, x),
                    });
                    pos[i] += 1;
                    head[i] = r.get(pos[i]).copied().unwrap_or(Idx::MAX);
                }
            }
            put_staged::<S>(rows, vals, &mut w, min, acc.unwrap());
        }
    }
    w
}

/// BRMerge-style merge of `mats` (fan-in ≥ 2) into an arena buffer, in
/// **one pass**: prefix-sums per-column upper bounds
/// (`ub_j = Σ_l nnz_l(j)`) to carve disjoint per-thread regions, then
/// cursor-merges each column's sorted runs — a two-cursor merge at
/// fan-in 2, a linear min-scan over k cursors above that. Each chunk
/// writes its columns compactly from its region base, so write traffic
/// is the actual output, not the upper bound. Coincident rows
/// accumulate strictly in list order, so the result is bit-identical to
/// the heap/pairwise kernels. The output stays staged (no compaction
/// pass — downstream merges read the runs directly; only
/// materialization compacts the inter-chunk gaps), and all scratch
/// comes from `arena`, so the hot loop never allocates. The returned
/// buffer belongs to `arena`; release or materialize it when done.
pub fn brmerge_into<S: Semiring>(
    _s: S,
    mats: &[ColsRef<'_, S::Elem>],
    shape: (usize, usize),
    arena: &mut MergeArena<S::Elem>,
) -> SlabBuf<S::Elem> {
    let k = mats.len();
    assert!(k >= 2, "brmerge needs fan-in >= 2");
    let n = shape.1;
    let mut out = arena.acquire(shape);
    let MergeArena {
        ub,
        starts,
        counts,
        peak_request,
        ..
    } = arena;
    ub.clear();
    ub.reserve(n + 1);
    ub.push(0);
    let mut run = 0usize;
    for j in 0..n {
        run += mats.iter().map(|m| m.col_nnz(j)).sum::<usize>();
        ub.push(run);
    }
    *peak_request = (*peak_request).max(run);
    // Grow-only: the vectors are raw storage, overwritten per run — no
    // zero-fill of the upper-bound span in steady state.
    if out.rowidx.len() < run {
        out.rowidx.resize(run, Idx::default());
        out.vals.resize(run, S::Elem::default());
    }
    starts.clear();
    starts.resize(n, 0);
    counts.clear();
    counts.resize(n, 0);

    let nchunks = partition_count(n);
    let chunks = carve_chunks(
        n,
        nchunks,
        ub,
        &mut out.rowidx,
        &mut out.vals,
        starts,
        counts,
    );
    debug_assert!((shape.0 as u64) < Idx::MAX as u64, "Idx::MAX sentinel");
    let ub = &*ub;
    chunks.into_par_iter().for_each(|ch| {
        let mut cur: Vec<(&[Idx], &[S::Elem])> = Vec::with_capacity(k);
        let mut pos = vec![0usize; k];
        let mut head = vec![0 as Idx; k];
        let mut cursor = 0usize;
        for j in ch.cols.clone() {
            let width = ub[j + 1] - ub[j];
            let rows = &mut ch.rows[cursor..cursor + width];
            let vals = &mut ch.vals[cursor..cursor + width];
            let w = if k == 2 {
                merge_two_cursors::<S>(
                    (mats[0].col_rows(j), mats[0].col_vals(j)),
                    (mats[1].col_rows(j), mats[1].col_vals(j)),
                    rows,
                    vals,
                )
            } else {
                cur.clear();
                cur.extend(mats.iter().map(|m| (m.col_rows(j), m.col_vals(j))));
                // Auto only selects this kernel at fan-in <= 5, so the
                // register-resident fixed variants cover the hot path;
                // the slice-backed loop serves Fixed(BrMerge) beyond.
                match k {
                    3 => merge_k_cursors_fixed::<S, 3>(&cur, rows, vals),
                    4 => merge_k_cursors_fixed::<S, 4>(&cur, rows, vals),
                    5 => merge_k_cursors_fixed::<S, 5>(&cur, rows, vals),
                    _ => merge_k_cursors::<S>(&cur, &mut pos, &mut head, rows, vals),
                }
            };
            ch.starts[j - ch.cols.start] = ch.base + cursor;
            ch.counts[j - ch.cols.start] = w;
            cursor += w;
        }
    });
    out.set_staged(starts, counts);
    out
}

/// Hussain-style parallel SpAdd of `mats` (fan-in ≥ 2) into an arena
/// buffer: columns are split into contiguous per-thread partitions; each
/// thread accumulates its columns through an epoch-stamped dense SPA
/// sized from the column-nnz upper bracket (`ub_j = Σ_l nnz_l(j)`, the
/// same bracket the Cohen estimator clamps against), strictly in list
/// order, then sorts each column by row, drops annihilators, and writes
/// the column compactly at its chunk's write cursor; the result stays
/// staged (inter-chunk gaps only) until materialization.
pub fn spadd_into<S: Semiring>(
    _s: S,
    mats: &[ColsRef<'_, S::Elem>],
    shape: (usize, usize),
    arena: &mut MergeArena<S::Elem>,
) -> SlabBuf<S::Elem> {
    assert!(mats.len() >= 2, "spadd needs fan-in >= 2");
    let (nrows, n) = shape;
    let mut out = arena.acquire(shape);
    let MergeArena {
        ub,
        starts,
        counts,
        spa,
        peak_request,
        ..
    } = arena;
    ub.clear();
    ub.reserve(n + 1);
    ub.push(0);
    let mut run = 0usize;
    for j in 0..n {
        run += mats.iter().map(|m| m.col_nnz(j)).sum::<usize>();
        ub.push(run);
    }
    *peak_request = (*peak_request).max(run);
    // Grow-only raw storage — see `brmerge_into`.
    if out.rowidx.len() < run {
        out.rowidx.resize(run, Idx::default());
        out.vals.resize(run, S::Elem::default());
    }
    starts.clear();
    starts.resize(n, 0);
    counts.clear();
    counts.resize(n, 0);

    let nchunks = partition_count(n);
    if spa.len() < nchunks {
        spa.resize_with(nchunks, SpaScratch::default);
    }
    let chunks = carve_chunks(
        n,
        nchunks,
        ub,
        &mut out.rowidx,
        &mut out.vals,
        starts,
        counts,
    );
    chunks
        .into_par_iter()
        .zip(spa[..nchunks].par_iter_mut())
        .for_each(|(ch, spa)| {
            spa.ensure_rows(nrows);
            let mut cursor = 0usize;
            for j in ch.cols.clone() {
                spa.begin_column();
                for mat in mats {
                    for (&r, &v) in mat.col_rows(j).iter().zip(mat.col_vals(j)) {
                        let ri = r as usize;
                        if spa.stamp[ri] == spa.epoch {
                            let at = spa.slot[ri] as usize;
                            spa.pairs[at].1 = S::add(spa.pairs[at].1, v);
                        } else {
                            spa.stamp[ri] = spa.epoch;
                            spa.slot[ri] = spa.pairs.len() as u32;
                            spa.pairs.push((r, v));
                        }
                    }
                }
                spa.pairs.sort_unstable_by_key(|&(r, _)| r);
                let rows = &mut ch.rows[cursor..cursor + spa.pairs.len()];
                let vals = &mut ch.vals[cursor..cursor + spa.pairs.len()];
                let mut w = 0usize;
                for &(r, v) in &spa.pairs {
                    put_staged::<S>(rows, vals, &mut w, r, v);
                }
                ch.starts[j - ch.cols.start] = ch.base + cursor;
                ch.counts[j - ch.cols.start] = w;
                cursor += w;
            }
        });
    out.set_staged(starts, counts);
    out
}

// ---------------------------------------------------------------------------
// Statistics, Algorithm 2 schedule and the stack merger
// ---------------------------------------------------------------------------

/// Statistics of a merging run, feeding Table III and the §VII-C text.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MergeStats {
    /// Largest element count over single merge operations — the peak
    /// memory proxy of Table III.
    pub peak_merge_elems: usize,
    /// Total elements passed through merge operations (work proxy).
    pub total_merged_elems: u64,
    /// Number of merge operations performed.
    pub merge_ops: usize,
    /// Virtual seconds of merge-lane occupancy (the sum of the merge
    /// spans' durations — merges no longer run on a private clock).
    pub merge_time: f64,
    /// Virtual seconds the host blocked on merge completion events.
    pub wait_time: f64,
    /// Wall seconds of real merge compute, summed over the spans'
    /// `measured_s` (zero under `TimeModel::Modeled`).
    pub measured_merge_s: f64,
}

impl MergeStats {
    /// Folds another accumulation into this one: peaks take the max,
    /// everything else adds (one phase's stats absorbed into a run's).
    pub fn absorb(&mut self, other: &MergeStats) {
        self.peak_merge_elems = self.peak_merge_elems.max(other.peak_merge_elems);
        self.total_merged_elems += other.total_merged_elems;
        self.merge_ops += other.merge_ops;
        self.merge_time += other.merge_time;
        self.wait_time += other.wait_time;
        self.measured_merge_s += other.measured_merge_s;
    }
}

/// Algorithm 2's merge trigger: after the `pushed`-th push (1-indexed),
/// how many top-of-stack entries merge. Zero on odd pushes; on even
/// pushes one more than the number of trailing doublings (`pushed = 2^a·b`
/// with `b` odd merges `a + 1` entries), so the stack mirrors merge sort.
pub fn algorithm2_merge_count(pushed: usize) -> usize {
    let mut n = 0usize;
    let mut j = pushed;
    while j != 0 && j.is_multiple_of(2) {
        n += 1;
        j /= 2;
    }
    if n == 0 {
        0
    } else {
        n + 1
    }
}

/// Clock-free Algorithm 2 stack merger: real merging work and element
/// statistics (`peak_merge_elems`, `total_merged_elems`, `merge_ops`)
/// with **no** time accounting — timing belongs to the executor layer.
/// Used by the ablation/bench harnesses; the pipeline drives the same
/// schedule through `Executor::submit_merge` instead. The merger owns a
/// [`MergeArena`], so under the default `Auto` policy its intermediate
/// merges stay arena-resident ([`MergeSlab::Buf`]) and only
/// [`StackMerger::finish`] materializes a `Csc`.
pub struct StackMerger {
    model: MachineModel,
    policy: MergeKernelPolicy,
    shape: (usize, usize),
    stack: Vec<MergeSlab<f64>>,
    arena: MergeArena<f64>,
    pushed: usize,
    stats: MergeStats,
}

impl StackMerger {
    /// New merger for slabs of the given shape. The model only feeds the
    /// `Auto` kernel selection rule; no durations are charged.
    pub fn new(model: MachineModel, policy: MergeKernelPolicy, shape: (usize, usize)) -> Self {
        Self {
            model,
            policy,
            shape,
            stack: Vec::new(),
            arena: MergeArena::new(),
            pushed: 0,
            stats: MergeStats::default(),
        }
    }

    /// Pushes the next stage's slab, running any merges Algorithm 2
    /// triggers.
    pub fn push(&mut self, slab: Csc<f64>) {
        self.stack.push(MergeSlab::Mat(slab));
        self.pushed += 1;
        let count = algorithm2_merge_count(self.pushed);
        if count > 0 {
            self.merge_top(count);
        }
    }

    /// Final merge of whatever remains; empty input yields an empty
    /// matrix of the configured shape. The single materialization of the
    /// arena path happens here. Also resets the Algorithm 2 push
    /// counter, so the merger — and its now-warm arena — can be reused
    /// for the next phase's stack.
    pub fn finish(&mut self) -> Csc<f64> {
        if self.stack.len() > 1 {
            self.merge_top(self.stack.len());
        }
        self.pushed = 0;
        match self.stack.pop() {
            Some(slab) => slab.into_csc(&mut self.arena),
            None => Csc::zero(self.shape.0, self.shape.1),
        }
    }

    fn merge_top(&mut self, count: usize) {
        let s = PlusTimes::<f64>::new();
        let at = self.stack.len() - count;
        let tail: Vec<MergeSlab<f64>> = self.stack.split_off(at);
        let elems: usize = tail.iter().map(MergeSlab::nnz).sum();
        let kernel = match self.policy {
            MergeKernelPolicy::Fixed(k) => k,
            MergeKernelPolicy::Auto => select_merge_kernel(&self.model, elems as u64, count),
        };
        self.stats.peak_merge_elems = self.stats.peak_merge_elems.max(elems);
        self.stats.total_merged_elems += elems as u64;
        self.stats.merge_ops += 1;
        let merged = {
            let refs: Vec<ColsRef<'_, f64>> = tail.iter().map(MergeSlab::as_cols).collect();
            match kernel {
                MergeKernel::BrMerge => {
                    MergeSlab::Buf(brmerge_into(s, &refs, self.shape, &mut self.arena))
                }
                MergeKernel::SpAdd => {
                    MergeSlab::Buf(spadd_into(s, &refs, self.shape, &mut self.arena))
                }
                k => MergeSlab::Mat(merge_refs_with(s, k, &refs, self.shape)),
            }
        };
        for slab in tail {
            slab.recycle(&mut self.arena);
        }
        self.stack.push(merged);
    }

    /// Accumulated element statistics (time fields stay zero).
    pub fn stats(&self) -> MergeStats {
        self.stats
    }

    /// Number of slabs currently on the stack.
    pub fn stack_len(&self) -> usize {
        self.stack.len()
    }

    /// The merger's arena (peak/capacity observability for the probes).
    pub fn arena(&self) -> &MergeArena<f64> {
        &self.arena
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_sparse::{Boolean, MinPlus};
    use hipmcl_spgemm::testutil::random_csc;
    use proptest::prelude::*;

    #[test]
    fn merge_stats_absorb_maxes_peak_and_sums_rest() {
        let mut a = MergeStats {
            peak_merge_elems: 10,
            total_merged_elems: 100,
            merge_ops: 3,
            merge_time: 1.0,
            wait_time: 0.5,
            measured_merge_s: 0.125,
        };
        let b = MergeStats {
            peak_merge_elems: 7,
            total_merged_elems: 50,
            merge_ops: 2,
            merge_time: 0.25,
            wait_time: 1.5,
            measured_merge_s: 0.375,
        };
        a.absorb(&b);
        assert_eq!(a.peak_merge_elems, 10, "peak takes the max");
        assert_eq!(a.total_merged_elems, 150);
        assert_eq!(a.merge_ops, 5);
        assert_eq!(a.merge_time, 1.25);
        assert_eq!(a.wait_time, 2.0);
        assert_eq!(a.measured_merge_s, 0.5);
        // Larger incoming peak wins.
        a.absorb(&MergeStats {
            peak_merge_elems: 99,
            ..MergeStats::default()
        });
        assert_eq!(a.peak_merge_elems, 99);
    }

    fn slabs(n: usize, count: usize) -> Vec<Csc<f64>> {
        (0..count)
            .map(|i| random_csc(n, n, n * 3, 100 + i as u64))
            .collect()
    }

    fn reference_sum(mats: &[Csc<f64>]) -> Csc<f64> {
        mats.iter()
            .skip(1)
            .fold(mats[0].clone(), |acc, m| acc.add_elementwise(m))
    }

    #[test]
    fn kway_merge_matches_elementwise_sum() {
        for k in [1usize, 2, 3, 4, 7, 8] {
            let mats = slabs(12, k);
            let got = kway_merge(&mats, (12, 12));
            got.assert_valid();
            let want = reference_sum(&mats);
            assert!(got.max_abs_diff(&want) < 1e-9, "k={k}");
            assert_eq!(got.nnz(), want.nnz(), "k={k}");
        }
    }

    #[test]
    fn kway_merge_empty_slice_returns_empty_of_shape() {
        let merged = kway_merge(&[], (7, 9));
        merged.assert_valid();
        assert_eq!((merged.nrows(), merged.ncols()), (7, 9));
        assert_eq!(merged.nnz(), 0);
    }

    #[test]
    fn every_kernel_empty_slice_returns_empty_of_shape() {
        for kernel in MergeKernel::all() {
            let merged = merge_with(PlusTimes::<f64>::new(), kernel, &[], (7, 9));
            merged.assert_valid();
            assert_eq!((merged.nrows(), merged.ncols()), (7, 9), "{kernel:?}");
            assert_eq!(merged.nnz(), 0, "{kernel:?}");
        }
    }

    #[test]
    fn kway_merge_drops_cancellation() {
        let a = random_csc(8, 8, 20, 1);
        let mut b = a.clone();
        for v in &mut b.vals {
            *v = -*v;
        }
        let merged = kway_merge(&[a, b], (8, 8));
        assert_eq!(merged.nnz(), 0, "exact cancellation drops all entries");
    }

    #[test]
    fn all_kernels_match_elementwise_sum() {
        for k in [2usize, 3, 5, 8] {
            let mats = slabs(10, k);
            let want = reference_sum(&mats);
            for kernel in hipmcl_comm::MergeKernel::all() {
                let got = merge_algo(kernel).merge(&mats, (10, 10));
                got.assert_valid();
                assert!(got.max_abs_diff(&want) < 1e-9, "{kernel:?} k={k}");
                assert_eq!(got.nnz(), want.nnz(), "{kernel:?} k={k}");
            }
        }
    }

    #[test]
    fn selection_rule_follows_model_crossovers() {
        let m = MachineModel::summit();
        // Fan-in 2–5: the arena-backed single-pass k-cursor merge.
        for ways in [2usize, 3, 4, 5] {
            assert_eq!(select_merge_kernel(&m, 100_000, ways), MergeKernel::BrMerge);
        }
        // Fan-in ≥ 6 with enough elements: the parallel SpAdd.
        assert_eq!(select_merge_kernel(&m, 100_000, 6), MergeKernel::SpAdd);
        assert_eq!(select_merge_kernel(&m, 100_000, 16), MergeKernel::SpAdd);
        // A tiny merge cannot amortize the SPA setup: the setup-free
        // cursor kernels take over — brmerge while its min-scan stays
        // under lg k, the heap at very high fan-in.
        assert_eq!(select_merge_kernel(&m, 100, 8), MergeKernel::BrMerge);
        assert_eq!(select_merge_kernel(&m, 100, 16), MergeKernel::Heap);
        // The legacy pairwise/hash baselines are never auto-selected.
        for total in [100u64, 10_000, 1_000_000] {
            for ways in [2usize, 3, 4, 8, 16] {
                let k = select_merge_kernel(&m, total, ways);
                assert!(
                    k != MergeKernel::Pairwise && k != MergeKernel::Hash,
                    "dominated kernel {k:?} selected at total={total} ways={ways}"
                );
            }
        }
    }

    #[test]
    fn arena_reuses_buffers_without_capacity_leak() {
        let s = PlusTimes::<f64>::new();
        let mut arena = MergeArena::new();
        // Many merges of varying size through one arena: capacity must
        // stay bounded by twice the largest single request.
        for round in 0..20 {
            let k = 2 + round % 4;
            let mats = slabs(16, k);
            let refs: Vec<ColsRef<'_, f64>> = mats.iter().map(ColsRef::of).collect();
            let buf = if k == 2 || k == 3 {
                brmerge_into(s, &refs, (16, 16), &mut arena)
            } else {
                spadd_into(s, &refs, (16, 16), &mut arena)
            };
            let want = reference_sum(&mats);
            assert!(buf.to_csc().max_abs_diff(&want) < 1e-9, "round={round}");
            arena.release(buf);
        }
        assert!(arena.peak_request() > 0);
        arena.assert_no_capacity_leak();
        assert!(
            arena.capacity_elems() <= 2 * arena.peak_request().max(32),
            "steady-state capacity {} vs peak request {}",
            arena.capacity_elems(),
            arena.peak_request()
        );
    }

    #[test]
    fn arena_outputs_match_materialized_kernels_exactly() {
        let s = PlusTimes::<f64>::new();
        let mut arena = MergeArena::new();
        for k in [2usize, 3, 5, 8] {
            let mats = slabs(10, k);
            let refs: Vec<ColsRef<'_, f64>> = mats.iter().map(ColsRef::of).collect();
            let want = merge_refs_with(s, MergeKernel::Heap, &refs, (10, 10));
            let br = brmerge_into(s, &refs, (10, 10), &mut arena);
            assert_eq!(br.to_csc(), want, "brmerge k={k}");
            arena.release(br);
            let sp = spadd_into(s, &refs, (10, 10), &mut arena);
            assert_eq!(sp.to_csc(), want, "spadd k={k}");
            arena.release(sp);
        }
    }

    #[test]
    fn algorithm2_schedule_matches_paper() {
        // Pushes 2,4,6,8 trigger merges of 2,3,2,4 lists respectively.
        let counts: Vec<usize> = (1..=8).map(algorithm2_merge_count).collect();
        assert_eq!(counts, vec![0, 2, 0, 3, 0, 2, 0, 4]);
    }

    #[test]
    fn stack_merger_follows_algorithm2_and_matches_sum() {
        for k in [1usize, 2, 3, 4, 5, 8] {
            let mats = slabs(10, k);
            let want = reference_sum(&mats);
            let mut sm =
                StackMerger::new(MachineModel::summit(), MergeKernelPolicy::Auto, (10, 10));
            let mut ops = Vec::new();
            for m in &mats {
                let before = sm.stats().merge_ops;
                sm.push(m.clone());
                if sm.stats().merge_ops > before {
                    ops.push(sm.pushed);
                }
            }
            if k == 8 {
                assert_eq!(ops, vec![2, 4, 6, 8]);
                assert_eq!(sm.stack_len(), 1, "8 = 2^3 collapses to one slab");
            }
            let got = sm.finish();
            assert!(got.max_abs_diff(&want) < 1e-9, "k={k}");
        }
    }

    #[test]
    fn stack_merger_result_is_policy_invariant() {
        // The arena-backed Auto path must produce the exact CSC the
        // legacy fixed kernels produce — schedule and accumulation order
        // are kernel-independent.
        let mats = slabs(14, 8);
        let run = |policy| {
            let mut sm = StackMerger::new(MachineModel::summit(), policy, (14, 14));
            for m in &mats {
                sm.push(m.clone());
            }
            sm.finish()
        };
        let auto = run(MergeKernelPolicy::Auto);
        for kernel in MergeKernel::all() {
            assert_eq!(
                run(MergeKernelPolicy::Fixed(kernel)),
                auto,
                "{kernel:?} diverged from Auto"
            );
        }
    }

    #[test]
    fn stack_merger_arena_stays_bounded() {
        let mut sm = StackMerger::new(MachineModel::summit(), MergeKernelPolicy::Auto, (20, 20));
        for m in slabs(20, 16) {
            sm.push(m);
        }
        let _ = sm.finish();
        assert!(sm.arena().peak_request() > 0, "auto path used the arena");
        sm.arena().assert_no_capacity_leak();
    }

    #[test]
    fn stack_merger_empty_finish_returns_zero_shape() {
        let mut sm = StackMerger::new(MachineModel::summit(), MergeKernelPolicy::Auto, (5, 6));
        let out = sm.finish();
        assert_eq!((out.nrows(), out.ncols(), out.nnz()), (5, 6, 0));
    }

    #[test]
    fn binary_peak_memory_beats_multiway_on_overlapping_slabs() {
        // Heavily overlapping patterns: early merges compress, so the
        // binary scheme's largest merge holds fewer elements (Table III).
        let base = random_csc(40, 40, 600, 42);
        let mats: Vec<Csc<f64>> = (0..8)
            .map(|i| {
                let mut m = base.clone();
                for v in &mut m.vals {
                    *v += i as f64 * 0.01;
                }
                m
            })
            .collect();

        let multiway_peak: usize = mats.iter().map(Csc::nnz).sum();
        let mut sm = StackMerger::new(MachineModel::summit(), MergeKernelPolicy::Auto, (40, 40));
        for m in &mats {
            sm.push(m.clone());
        }
        let _ = sm.finish();
        assert!(
            sm.stats().peak_merge_elems < multiway_peak,
            "binary {} vs multiway {}",
            sm.stats().peak_merge_elems,
            multiway_peak
        );
    }

    /// Random stage-product sets with deliberate cancellation: a base set
    /// of random slabs, optionally including the exact negation of one of
    /// them so entries cancel to exact zero mid-accumulation.
    fn product_set(n: usize, k: usize, seed: u64, with_cancel: bool) -> Vec<Csc<f64>> {
        let mut mats = slabs(n, k);
        for (i, m) in mats.iter_mut().enumerate() {
            for v in &mut m.vals {
                // Mixed signs so partial sums can hit exact zero.
                if (i + 1) % 2 == 0 {
                    *v = -*v;
                }
            }
        }
        if with_cancel {
            let mut neg = random_csc(n, n, n * 3, 100 + (seed % k as u64));
            for v in &mut neg.vals {
                *v = -*v;
            }
            mats.push(neg);
        }
        mats
    }

    proptest! {
        /// All five merge kernels produce bit-identical CSC outputs —
        /// values AND sparsity structure, including entries removed by
        /// exact-zero cancellation.
        #[test]
        fn merge_kernels_are_bit_identical(
            n in 4usize..24,
            k in 2usize..9,
            seed in 0u64..32,
            with_cancel in proptest::prelude::any::<bool>(),
        ) {
            let mats = product_set(n, k, seed, with_cancel);
            let shape = (n, n);
            let heap = merge_algo(MergeKernel::Heap).merge(&mats, shape);
            heap.assert_valid();
            for kernel in MergeKernel::all() {
                let got = merge_algo(kernel).merge(&mats, shape);
                // `Csc: PartialEq` compares colptr, rowidx and vals
                // exactly — bitwise equality of structure and floats.
                prop_assert_eq!(&heap, &got, "{:?}", kernel);
            }
        }

        /// Min-plus: the same five kernels stay bit-identical when ⊕ is
        /// `min` and the annihilator is `+∞`. One slab carries explicit
        /// `+∞` entries: positions where *every* contribution is `+∞`
        /// must be dropped by all kernels alike (exact-annihilator
        /// cancellation), while positions that also receive a finite
        /// value must keep the finite minimum.
        #[test]
        fn merge_kernels_bit_identical_under_min_plus(
            n in 4usize..24,
            k in 2usize..9,
            seed in 0u64..32,
            with_cancel in proptest::prelude::any::<bool>(),
        ) {
            let s = MinPlus;
            let mut mats = slabs(n, k);
            if with_cancel {
                // Annihilator slab: all entries are +∞ ("no path").
                let mut inf = random_csc(n, n, n * 3, 500 + seed);
                for v in &mut inf.vals {
                    *v = f64::INFINITY;
                }
                mats.push(inf);
            }
            let shape = (n, n);
            let heap = merge_with(s, MergeKernel::Heap, &mats, shape);
            heap.assert_valid();
            for kernel in MergeKernel::all() {
                let got = merge_with(s, kernel, &mats, shape);
                prop_assert_eq!(&heap, &got, "{:?}", kernel);
            }
            prop_assert!(
                heap.vals.iter().all(|v| v.is_finite()),
                "accumulated +∞ entries must be dropped, not stored"
            );
        }

        /// Boolean: bit-identity when ⊕ is `∨` and the annihilator is
        /// `false`, including explicit stored `false` entries that must
        /// vanish unless some list contributes `true` at that position.
        #[test]
        fn merge_kernels_bit_identical_under_boolean(
            n in 4usize..24,
            k in 2usize..9,
            seed in 0u64..32,
            with_cancel in proptest::prelude::any::<bool>(),
        ) {
            let s = Boolean;
            let mut mats: Vec<Csc<bool>> = slabs(n, k)
                .iter()
                .map(|m| m.map_values(|v| v > 1.0))
                .collect();
            if with_cancel {
                // Annihilator slab: every stored entry is `false`.
                let f = random_csc(n, n, n * 3, 700 + seed).map_values(|_| false);
                mats.push(f);
            }
            let shape = (n, n);
            let heap = merge_with(s, MergeKernel::Heap, &mats, shape);
            heap.assert_valid();
            for kernel in MergeKernel::all() {
                let got = merge_with(s, kernel, &mats, shape);
                prop_assert_eq!(&heap, &got, "{:?}", kernel);
            }
            prop_assert!(
                heap.vals.iter().all(|&v| v),
                "an OR-accumulation can only store true entries"
            );
        }
    }
}
