//! Merging the intermediate products of Sparse SUMMA.
//!
//! Each SUMMA stage `k` produces an intermediate `A_ik · B_kj` for the
//! local output block; the block's final value is their elementwise sum.
//! Two schemes are implemented:
//!
//! * **Multiway merge** (original HipMCL): hold all `k = √P` lists until
//!   the stages finish, then one `k`-way heap merge — `O(kn lg k)` work,
//!   but every intermediate stays resident and nothing can overlap.
//! * **Binary merge** (§IV, Algorithm 2): push lists as they arrive and
//!   merge on even-numbered stages with a stack whose shape mirrors merge
//!   sort. Work is `O(kn lg k · lg lg k)` — a `lg lg k` factor worse — but
//!   merges happen *while the GPU computes the next stage*, and because
//!   early merges compress duplicates, the largest single merge holds
//!   fewer elements than the multiway merge's all-at-once set (the
//!   15–25 % peak-memory win of Table III).
//!
//! [`BinaryMerger`] also owns the virtual-time accounting: each merge
//! waits for its inputs' ready events (GPU D2H completions) and charges
//! [`hipmcl_comm::MachineModel::merge_time`].

use hipmcl_comm::MachineModel;
use hipmcl_sparse::csc::counts_to_colptr;
use hipmcl_sparse::{Csc, Idx};
use rayon::prelude::*;

/// Which merging scheme a SUMMA run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Defer everything, one k-way merge at the end (original HipMCL).
    Multiway,
    /// Algorithm 2: incremental stack merges on even stages.
    Binary,
}

/// K-way merges equally-shaped CSC matrices by summing coincident entries.
/// Column-parallel; each column runs a cursor-based heap merge. Entries
/// that cancel to exactly zero are dropped.
pub fn kway_merge(mats: &[Csc<f64>]) -> Csc<f64> {
    assert!(!mats.is_empty(), "nothing to merge");
    let (m, n) = (mats[0].nrows(), mats[0].ncols());
    for mat in mats {
        assert_eq!((mat.nrows(), mat.ncols()), (m, n), "merge shape mismatch");
    }
    if mats.len() == 1 {
        return mats[0].clone();
    }

    // Per-column merged outputs.
    let cols: Vec<(Vec<Idx>, Vec<f64>)> = (0..n)
        .into_par_iter()
        .map(|j| merge_column(mats, j))
        .collect();

    let counts: Vec<usize> = cols.iter().map(|(r, _)| r.len()).collect();
    let colptr = counts_to_colptr(&counts);
    let nnz = colptr[n];
    let mut rowidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for (r, v) in cols {
        rowidx.extend_from_slice(&r);
        vals.extend_from_slice(&v);
    }
    Csc::from_parts(m, n, colptr, rowidx, vals)
}

/// Heap-merges column `j` across all matrices.
fn merge_column(mats: &[Csc<f64>], j: usize) -> (Vec<Idx>, Vec<f64>) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut heap: BinaryHeap<Reverse<(Idx, usize)>> = BinaryHeap::with_capacity(mats.len());
    let mut pos: Vec<usize> = vec![0; mats.len()];
    for (l, mat) in mats.iter().enumerate() {
        if let Some(&r) = mat.col_rows(j).first() {
            heap.push(Reverse((r, l)));
        }
    }
    let mut rows = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    while let Some(Reverse((r, l))) = heap.pop() {
        let v = mats[l].col_vals(j)[pos[l]];
        if rows.last() == Some(&r) {
            *vals.last_mut().unwrap() += v;
        } else {
            // Drop a just-finished entry if it cancelled to zero.
            if let Some(&last_v) = vals.last() {
                if last_v == 0.0 {
                    rows.pop();
                    vals.pop();
                }
            }
            rows.push(r);
            vals.push(v);
        }
        pos[l] += 1;
        let rcol = mats[l].col_rows(j);
        if pos[l] < rcol.len() {
            heap.push(Reverse((rcol[pos[l]], l)));
        }
    }
    if let Some(&last_v) = vals.last() {
        if last_v == 0.0 {
            rows.pop();
            vals.pop();
        }
    }
    (rows, vals)
}

/// Statistics of a merging run, feeding Table III and the §VII-C text.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MergeStats {
    /// Largest element count over single merge operations — the peak
    /// memory proxy of Table III.
    pub peak_merge_elems: usize,
    /// Total elements passed through merge operations (work proxy).
    pub total_merged_elems: u64,
    /// Number of merge operations performed.
    pub merge_ops: usize,
    /// Virtual seconds spent merging.
    pub merge_time: f64,
    /// Virtual seconds the host waited for inputs (CPU idle).
    pub wait_time: f64,
}

impl MergeStats {
    /// Folds another accumulation into this one: peaks take the max,
    /// everything else adds (one phase's stats absorbed into a run's).
    pub fn absorb(&mut self, other: &MergeStats) {
        self.peak_merge_elems = self.peak_merge_elems.max(other.peak_merge_elems);
        self.total_merged_elems += other.total_merged_elems;
        self.merge_ops += other.merge_ops;
        self.merge_time += other.merge_time;
        self.wait_time += other.wait_time;
    }
}

/// Incremental stack merger implementing Algorithm 2 of the paper, with
/// virtual-time accounting.
pub struct BinaryMerger {
    model: MachineModel,
    /// `(slab, ready_at)` — ready is when the slab landed on the host.
    stack: Vec<(Csc<f64>, f64)>,
    pushed: usize,
    stats: MergeStats,
}

impl BinaryMerger {
    /// New merger under the given machine model.
    pub fn new(model: MachineModel) -> Self {
        Self {
            model,
            stack: Vec::new(),
            pushed: 0,
            stats: MergeStats::default(),
        }
    }

    /// Pushes the stage-`i` intermediate (1-indexed pushes). `ready_at` is
    /// the virtual time the slab became available on the host (its D2H
    /// completion, or the CPU kernel's finish). `host_now` is the host
    /// clock; the returned value is the host clock after any merging this
    /// push triggers (Algorithm 2, lines 5–15).
    pub fn push(&mut self, slab: Csc<f64>, ready_at: f64, host_now: f64) -> f64 {
        self.pushed += 1;
        self.stack.push((slab, ready_at));
        let mut nmerges = 0usize;
        let mut j = self.pushed;
        while j != 0 && j.is_multiple_of(2) {
            nmerges += 1;
            j /= 2;
        }
        if nmerges == 0 {
            return host_now;
        }
        self.merge_top(nmerges + 1, host_now)
    }

    /// Final merge of whatever remains on the stack (Algorithm 2, line 16
    /// generalized to non-power-of-two stage counts). Returns the merged
    /// block and the updated host clock.
    pub fn finish(&mut self, host_now: f64) -> (Csc<f64>, f64) {
        assert!(!self.stack.is_empty(), "finish on empty merger");
        let now = if self.stack.len() > 1 {
            self.merge_top(self.stack.len(), host_now)
        } else {
            // Single slab: still must wait for it to be resident.
            let ready = self.stack[0].1;
            let idle = (ready - host_now).max(0.0);
            self.stats.wait_time += idle;
            host_now.max(ready)
        };
        let (slab, _) = self.stack.pop().unwrap();
        (slab, now)
    }

    /// Merges the top `count` stack entries with a heap (the paper found
    /// successive two-way merges inefficient in practice, §IV).
    fn merge_top(&mut self, count: usize, host_now: f64) -> f64 {
        let at = self.stack.len() - count;
        let tail: Vec<(Csc<f64>, f64)> = self.stack.split_off(at);
        let elems: usize = tail.iter().map(|(m, _)| m.nnz()).sum();
        let inputs_ready = tail.iter().map(|(_, r)| *r).fold(0.0f64, f64::max);

        let start = host_now.max(inputs_ready);
        self.stats.wait_time += (inputs_ready - host_now).max(0.0);
        let dur = self.model.merge_time(elems as u64, count);
        let done = start + dur;

        self.stats.peak_merge_elems = self.stats.peak_merge_elems.max(elems);
        self.stats.total_merged_elems += elems as u64;
        self.stats.merge_ops += 1;
        self.stats.merge_time += dur;

        let mats: Vec<Csc<f64>> = tail.into_iter().map(|(m, _)| m).collect();
        let merged = kway_merge(&mats);
        self.stack.push((merged, done));
        done
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MergeStats {
        self.stats
    }

    /// Number of slabs currently on the stack.
    pub fn stack_len(&self) -> usize {
        self.stack.len()
    }
}

/// Runs a whole merging sequence through the *multiway* scheme: waits for
/// every slab, then a single k-way merge. Returns `(merged, new_host_now,
/// stats)`.
pub fn multiway_merge_timed(
    model: &MachineModel,
    slabs: Vec<(Csc<f64>, f64)>,
    host_now: f64,
) -> (Csc<f64>, f64, MergeStats) {
    assert!(!slabs.is_empty());
    let elems: usize = slabs.iter().map(|(m, _)| m.nnz()).sum();
    let ready = slabs.iter().map(|(_, r)| *r).fold(0.0f64, f64::max);
    let ways = slabs.len();
    let start = host_now.max(ready);
    let dur = if ways > 1 {
        model.merge_time(elems as u64, ways)
    } else {
        0.0
    };
    let stats = MergeStats {
        peak_merge_elems: elems,
        total_merged_elems: elems as u64,
        merge_ops: 1,
        merge_time: dur,
        wait_time: (ready - host_now).max(0.0),
    };
    let mats: Vec<Csc<f64>> = slabs.into_iter().map(|(m, _)| m).collect();
    (kway_merge(&mats), start + dur, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_spgemm::testutil::random_csc;

    #[test]
    fn merge_stats_absorb_maxes_peak_and_sums_rest() {
        let mut a = MergeStats {
            peak_merge_elems: 10,
            total_merged_elems: 100,
            merge_ops: 3,
            merge_time: 1.0,
            wait_time: 0.5,
        };
        let b = MergeStats {
            peak_merge_elems: 7,
            total_merged_elems: 50,
            merge_ops: 2,
            merge_time: 0.25,
            wait_time: 1.5,
        };
        a.absorb(&b);
        assert_eq!(a.peak_merge_elems, 10, "peak takes the max");
        assert_eq!(a.total_merged_elems, 150);
        assert_eq!(a.merge_ops, 5);
        assert_eq!(a.merge_time, 1.25);
        assert_eq!(a.wait_time, 2.0);
        // Larger incoming peak wins.
        a.absorb(&MergeStats {
            peak_merge_elems: 99,
            ..MergeStats::default()
        });
        assert_eq!(a.peak_merge_elems, 99);
    }

    fn slabs(n: usize, count: usize) -> Vec<Csc<f64>> {
        (0..count)
            .map(|i| random_csc(n, n, n * 3, 100 + i as u64))
            .collect()
    }

    fn reference_sum(mats: &[Csc<f64>]) -> Csc<f64> {
        mats.iter()
            .skip(1)
            .fold(mats[0].clone(), |acc, m| acc.add_elementwise(m))
    }

    #[test]
    fn kway_merge_matches_elementwise_sum() {
        for k in [1usize, 2, 3, 4, 7, 8] {
            let mats = slabs(12, k);
            let got = kway_merge(&mats);
            got.assert_valid();
            let want = reference_sum(&mats);
            assert!(got.max_abs_diff(&want) < 1e-9, "k={k}");
            assert_eq!(got.nnz(), want.nnz(), "k={k}");
        }
    }

    #[test]
    fn kway_merge_drops_cancellation() {
        let a = random_csc(8, 8, 20, 1);
        let mut b = a.clone();
        for v in &mut b.vals {
            *v = -*v;
        }
        let merged = kway_merge(&[a, b]);
        assert_eq!(merged.nnz(), 0, "exact cancellation drops all entries");
    }

    #[test]
    fn binary_merger_matches_multiway_result() {
        for k in [1usize, 2, 3, 4, 5, 8] {
            let mats = slabs(10, k);
            let want = reference_sum(&mats);

            let mut bm = BinaryMerger::new(MachineModel::summit());
            let mut now = 0.0;
            for m in &mats {
                now = bm.push(m.clone(), 0.0, now);
            }
            let (got, _) = bm.finish(now);
            assert!(got.max_abs_diff(&want) < 1e-9, "k={k}");
        }
    }

    #[test]
    fn binary_merge_schedule_follows_algorithm2() {
        // Pushing 8 slabs must trigger merges at pushes 2,4,6,8 with
        // 2,3,2,4 lists respectively (stack mirrors merge sort).
        let mats = slabs(6, 8);
        let mut bm = BinaryMerger::new(MachineModel::summit());
        let mut ops = Vec::new();
        let mut now = 0.0;
        for m in &mats {
            let before = bm.stats().merge_ops;
            now = bm.push(m.clone(), 0.0, now);
            if bm.stats().merge_ops > before {
                ops.push(bm.pushed);
            }
        }
        assert_eq!(ops, vec![2, 4, 6, 8]);
        assert_eq!(bm.stack_len(), 1, "8 = 2^3 collapses to one slab");
        let (_, _) = bm.finish(now);
    }

    #[test]
    fn binary_peak_memory_beats_multiway_on_overlapping_slabs() {
        // Heavily overlapping patterns: early merges compress, so the
        // binary scheme's largest merge holds fewer elements (Table III).
        let base = random_csc(40, 40, 600, 42);
        let mats: Vec<Csc<f64>> = (0..8)
            .map(|i| {
                let mut m = base.clone();
                for v in &mut m.vals {
                    *v += i as f64 * 0.01;
                }
                m
            })
            .collect();

        let model = MachineModel::summit();
        let timed: Vec<(Csc<f64>, f64)> = mats.iter().map(|m| (m.clone(), 0.0)).collect();
        let (_, _, mstats) = multiway_merge_timed(&model, timed, 0.0);

        let mut bm = BinaryMerger::new(model);
        let mut now = 0.0;
        for m in &mats {
            now = bm.push(m.clone(), 0.0, now);
        }
        let _ = bm.finish(now);
        let bstats = bm.stats();

        assert!(
            bstats.peak_merge_elems < mstats.peak_merge_elems,
            "binary {} vs multiway {}",
            bstats.peak_merge_elems,
            mstats.peak_merge_elems
        );
    }

    #[test]
    fn binary_merger_waits_for_late_slabs() {
        let mats = slabs(6, 2);
        let mut bm = BinaryMerger::new(MachineModel::summit());
        let now = bm.push(mats[0].clone(), 0.0, 0.0);
        // Second slab lands at t=5 (e.g. GPU D2H): merge starts then.
        let now = bm.push(mats[1].clone(), 5.0, now);
        assert!(now >= 5.0);
        assert!(bm.stats().wait_time >= 5.0 - 1e-9);
    }

    #[test]
    fn multiway_merge_timed_waits_for_slowest() {
        let mats = slabs(6, 3);
        let timed: Vec<(Csc<f64>, f64)> = mats
            .iter()
            .enumerate()
            .map(|(i, m)| (m.clone(), i as f64))
            .collect();
        let (merged, now, stats) = multiway_merge_timed(&MachineModel::summit(), timed, 0.0);
        merged.assert_valid();
        assert!(now >= 2.0, "must wait for the slab ready at t=2");
        assert!((stats.wait_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn finish_single_slab_waits() {
        let mats = slabs(4, 1);
        let mut bm = BinaryMerger::new(MachineModel::summit());
        let now = bm.push(mats[0].clone(), 3.0, 0.0);
        assert_eq!(now, 0.0, "no merge on first push");
        let (out, now) = bm.finish(now);
        assert_eq!(out, mats[0]);
        assert!(now >= 3.0);
    }
}
