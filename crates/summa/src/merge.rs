//! Merging the intermediate products of Sparse SUMMA.
//!
//! Each SUMMA stage `k` produces an intermediate `A_ik · B_kj` for the
//! local output block; the block's final value is their elementwise sum.
//! Two *schedules* decide when merge operations happen:
//!
//! * **Multiway merge** (original HipMCL): hold all `k = √P` lists until
//!   the stages finish, then one `k`-way merge — every intermediate stays
//!   resident and nothing can overlap.
//! * **Binary merge** (§IV, Algorithm 2): push lists as they arrive and
//!   merge on even-numbered stages with a stack whose shape mirrors merge
//!   sort ([`algorithm2_merge_count`]). Work is a `lg lg k` factor worse,
//!   but merges happen *while the next stage computes*, and because early
//!   merges compress duplicates, the largest single merge holds fewer
//!   elements than the multiway merge's all-at-once set (the 15–25 %
//!   peak-memory win of Table III).
//!
//! Orthogonally, each individual merge *operation* runs one of three
//! [`MergeAlgo`] kernels — [`HeapMerge`], [`PairwiseMerge`],
//! [`HashMerge`] — selected per merge by [`select_merge_kernel`], which
//! evaluates [`MachineModel::merge_time_with`] for the merge's fan-in and
//! element count (the merge-side analogue of the `cf`-based SpGEMM kernel
//! selector). All three produce **bit-identical** output: they accumulate
//! coincident entries strictly in list order with the semiring's `⊕` and
//! drop entries whose final value is the semiring's annihilator (exactly
//! `0.0` for plus-times, `+∞` for min-plus, `false` for boolean), so
//! kernel choice can never change a result — in any semiring
//! (property-tested below for plus-times, min-plus and boolean).
//!
//! Virtual-time accounting does **not** live here: a merge is an
//! [`Executor`](crate::executor::Executor) task, submitted by the pipeline
//! through `Executor::submit_merge` and timed on the executor's worker
//! timelines like any kernel launch. This module only provides the real
//! merging work, the Algorithm 2 schedule, and the [`MergeSpan`] record
//! type the pipeline surfaces per merge.

use hipmcl_comm::{MachineModel, MergeKernel};
use hipmcl_sparse::csc::counts_to_colptr;
use hipmcl_sparse::{Csc, Idx, PlusTimes, Semiring, Value};
use rayon::prelude::*;

/// Which merging schedule a SUMMA run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Defer everything, one k-way merge at the end (original HipMCL).
    Multiway,
    /// Algorithm 2: incremental stack merges on even stages.
    Binary,
}

/// How the kernel of each individual merge operation is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MergeKernelPolicy {
    /// Per merge, pick the kernel the machine model rates cheapest for
    /// the merge's fan-in and element count ([`select_merge_kernel`]).
    #[default]
    Auto,
    /// Force one kernel for every merge (ablations and baselines).
    Fixed(MergeKernel),
}

/// Picks the cheapest merge kernel for a `ways`-way merge of
/// `total_elems` elements by evaluating the machine model's cost curves
/// ([`MachineModel::merge_time_with`]) — the documented selection rule:
///
/// * fan-in 2 → [`MergeKernel::Pairwise`] (a two-way cursor merge beats a
///   heap with no sift and a hash with no table);
/// * fan-in 3, or too few elements to amortize the hash table setup →
///   [`MergeKernel::Heap`];
/// * fan-in ≥ 4 with enough elements → [`MergeKernel::Hash`]
///   (fan-in-independent accumulation once `lg k` exceeds the hash's
///   per-element constant, mirroring the SpGEMM heap/hash crossover).
///
/// Ties resolve toward the heap (the listed order).
pub fn select_merge_kernel(model: &MachineModel, total_elems: u64, ways: usize) -> MergeKernel {
    MergeKernel::all()
        .into_iter()
        .min_by(|a, b| {
            model
                .merge_time_with(*a, total_elems, ways)
                .partial_cmp(&model.merge_time_with(*b, total_elems, ways))
                .expect("merge times are finite")
        })
        .expect("at least one kernel")
}

/// One merge operation as it ran on an executor worker timeline — the
/// per-merge observability record surfaced in `SummaOutput::merge_spans`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergeSpan {
    /// Virtual time the merge started executing on its lane.
    pub start: f64,
    /// Virtual time the merged slab became available.
    pub end: f64,
    /// The kernel that ran it.
    pub kernel: MergeKernel,
    /// Fan-in (number of lists merged).
    pub ways: usize,
    /// Total input elements passing through the merge.
    pub elems: u64,
    /// Index of the worker lane (socket) it occupied.
    pub lane: usize,
    /// The lane submission-time pinning would have chosen (the task's
    /// origin queue; equals `lane` unless the merge was stolen).
    pub origin: usize,
    /// Whether the occupying lane stole the task from its origin queue
    /// (only under `StealPolicy::CostAware`).
    pub stolen: bool,
}

impl MergeSpan {
    /// Seconds the merge occupied its lane.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A single k-way merge kernel: sums equally-shaped CSC matrices. All
/// implementations accumulate coincident entries in list order and drop
/// entries whose final value is the semiring's annihilator, making their
/// outputs bit-identical (see the module docs). The trait is the
/// `f64`/plus-times face kept for the benches and the exact symbolic
/// estimator; the pipeline dispatches statically through [`merge_with`]
/// so any [`Semiring`] can drive the same three kernels.
pub trait MergeAlgo {
    /// Which kernel this is (for spans and model lookup).
    fn kind(&self) -> MergeKernel;
    /// Merges `mats` (all of shape `shape`); an empty slice yields an
    /// empty matrix of that shape.
    fn merge(&self, mats: &[Csc<f64>], shape: (usize, usize)) -> Csc<f64>;
}

/// Cursor-based k-way heap merge (original HipMCL's accumulator).
pub struct HeapMerge;
/// Left-fold of two-way cursor merges.
pub struct PairwiseMerge;
/// SpAdd-style per-column hash accumulation.
pub struct HashMerge;

/// The implementation behind a [`MergeKernel`] tag.
pub fn merge_algo(kernel: MergeKernel) -> &'static dyn MergeAlgo {
    match kernel {
        MergeKernel::Heap => &HeapMerge,
        MergeKernel::Pairwise => &PairwiseMerge,
        MergeKernel::Hash => &HashMerge,
    }
}

/// Runs the selected merge kernel in the given semiring — the statically
/// dispatched generic entry the pipeline uses (a `dyn MergeAlgo` cannot
/// carry a semiring type parameter). All three kernels accumulate
/// coincident entries strictly in list order with [`Semiring::add`] and
/// drop entries whose final value is the annihilator
/// ([`Semiring::is_annihilator`]), so for any semiring the kernel choice
/// never changes the result — the bit-identity property the plus-times
/// path has always had, extended verbatim.
pub fn merge_with<S: Semiring>(
    s: S,
    kernel: MergeKernel,
    mats: &[Csc<S::Elem>],
    shape: (usize, usize),
) -> Csc<S::Elem> {
    match kernel {
        MergeKernel::Heap => kway_merge_in(s, mats, shape),
        MergeKernel::Pairwise => pairwise_merge_in(s, mats, shape),
        MergeKernel::Hash => hash_merge_in(s, mats, shape),
    }
}

/// Checks shapes and handles the 0- and 1-input fast paths shared by all
/// kernels; returns `None` when a real merge is needed.
fn merge_trivial<T: Value>(mats: &[Csc<T>], shape: (usize, usize)) -> Option<Csc<T>> {
    for mat in mats {
        assert_eq!((mat.nrows(), mat.ncols()), shape, "merge shape mismatch");
    }
    match mats.len() {
        // A zero-flops phase produces nothing to merge; the configured
        // output shape keeps the pipeline alive instead of panicking.
        0 => Some(Csc::zero(shape.0, shape.1)),
        1 => Some(mats[0].clone()),
        _ => None,
    }
}

/// Assembles per-column `(rows, vals)` outputs into a CSC matrix.
fn assemble<T: Value>(shape: (usize, usize), cols: Vec<(Vec<Idx>, Vec<T>)>) -> Csc<T> {
    let (m, n) = shape;
    let counts: Vec<usize> = cols.iter().map(|(r, _)| r.len()).collect();
    let colptr = counts_to_colptr(&counts);
    let nnz = colptr[n];
    let mut rowidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for (r, v) in cols {
        rowidx.extend_from_slice(&r);
        vals.extend_from_slice(&v);
    }
    Csc::from_parts(m, n, colptr, rowidx, vals)
}

impl MergeAlgo for HeapMerge {
    fn kind(&self) -> MergeKernel {
        MergeKernel::Heap
    }

    fn merge(&self, mats: &[Csc<f64>], shape: (usize, usize)) -> Csc<f64> {
        kway_merge_in(PlusTimes::<f64>::new(), mats, shape)
    }
}

impl MergeAlgo for PairwiseMerge {
    fn kind(&self) -> MergeKernel {
        MergeKernel::Pairwise
    }

    fn merge(&self, mats: &[Csc<f64>], shape: (usize, usize)) -> Csc<f64> {
        pairwise_merge_in(PlusTimes::<f64>::new(), mats, shape)
    }
}

impl MergeAlgo for HashMerge {
    fn kind(&self) -> MergeKernel {
        MergeKernel::Hash
    }

    fn merge(&self, mats: &[Csc<f64>], shape: (usize, usize)) -> Csc<f64> {
        hash_merge_in(PlusTimes::<f64>::new(), mats, shape)
    }
}

/// K-way merges equally-shaped CSC matrices with the heap kernel (kept as
/// a named entry point: the exact symbolic estimator and the benches call
/// it directly). An empty slice returns an empty matrix of `shape`.
pub fn kway_merge(mats: &[Csc<f64>], shape: (usize, usize)) -> Csc<f64> {
    kway_merge_in(PlusTimes::<f64>::new(), mats, shape)
}

/// [`kway_merge`] in an arbitrary semiring (the heap kernel).
pub fn kway_merge_in<S: Semiring>(
    s: S,
    mats: &[Csc<S::Elem>],
    shape: (usize, usize),
) -> Csc<S::Elem> {
    if let Some(t) = merge_trivial(mats, shape) {
        return t;
    }
    let cols: Vec<(Vec<Idx>, Vec<S::Elem>)> = (0..shape.1)
        .into_par_iter()
        .map(|j| merge_column(s, mats, j))
        .collect();
    assemble(shape, cols)
}

/// Left-fold of two-way cursor merges in an arbitrary semiring. The left
/// fold keeps the accumulation order identical to the heap's list-order
/// tie-breaking: after i folds the accumulator holds
/// `v_0 ⊕ v_1 ⊕ … ⊕ v_i` exactly as the heap would have combined it.
pub fn pairwise_merge_in<S: Semiring>(
    s: S,
    mats: &[Csc<S::Elem>],
    shape: (usize, usize),
) -> Csc<S::Elem> {
    if let Some(t) = merge_trivial(mats, shape) {
        return t;
    }
    let mut acc = two_way_merge(s, &mats[0], &mats[1], shape);
    for m in &mats[2..] {
        acc = two_way_merge(s, &acc, m, shape);
    }
    acc
}

/// Per-column hash accumulation in an arbitrary semiring.
pub fn hash_merge_in<S: Semiring>(
    s: S,
    mats: &[Csc<S::Elem>],
    shape: (usize, usize),
) -> Csc<S::Elem> {
    if let Some(t) = merge_trivial(mats, shape) {
        return t;
    }
    let cols: Vec<(Vec<Idx>, Vec<S::Elem>)> = (0..shape.1)
        .into_par_iter()
        .map(|j| hash_column(s, mats, j))
        .collect();
    assemble(shape, cols)
}

/// Heap-merges column `j` across all matrices.
fn merge_column<S: Semiring>(_s: S, mats: &[Csc<S::Elem>], j: usize) -> (Vec<Idx>, Vec<S::Elem>) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut heap: BinaryHeap<Reverse<(Idx, usize)>> = BinaryHeap::with_capacity(mats.len());
    let mut pos: Vec<usize> = vec![0; mats.len()];
    for (l, mat) in mats.iter().enumerate() {
        if let Some(&r) = mat.col_rows(j).first() {
            heap.push(Reverse((r, l)));
        }
    }
    let mut rows = Vec::new();
    let mut vals: Vec<S::Elem> = Vec::new();
    while let Some(Reverse((r, l))) = heap.pop() {
        let v = mats[l].col_vals(j)[pos[l]];
        if rows.last() == Some(&r) {
            let acc = vals.last_mut().unwrap();
            *acc = S::add(*acc, v);
        } else {
            // Drop a just-finished entry if it accumulated to the
            // annihilator (plus-times: cancelled to zero).
            if let Some(&last_v) = vals.last() {
                if S::is_annihilator(last_v) {
                    rows.pop();
                    vals.pop();
                }
            }
            rows.push(r);
            vals.push(v);
        }
        pos[l] += 1;
        let rcol = mats[l].col_rows(j);
        if pos[l] < rcol.len() {
            heap.push(Reverse((rcol[pos[l]], l)));
        }
    }
    if let Some(&last_v) = vals.last() {
        if S::is_annihilator(last_v) {
            rows.pop();
            vals.pop();
        }
    }
    (rows, vals)
}

/// Two-way cursor merge with the shared annihilator-drop rule.
fn two_way_merge<S: Semiring>(
    _s: S,
    a: &Csc<S::Elem>,
    b: &Csc<S::Elem>,
    shape: (usize, usize),
) -> Csc<S::Elem> {
    let cols: Vec<(Vec<Idx>, Vec<S::Elem>)> = (0..shape.1)
        .into_par_iter()
        .map(|j| {
            let (ar, av) = (a.col_rows(j), a.col_vals(j));
            let (br, bv) = (b.col_rows(j), b.col_vals(j));
            let mut rows = Vec::with_capacity(ar.len() + br.len());
            let mut vals = Vec::with_capacity(ar.len() + br.len());
            let (mut i, mut k) = (0, 0);
            let mut push = |r: Idx, v: S::Elem| {
                if !S::is_annihilator(v) {
                    rows.push(r);
                    vals.push(v);
                }
            };
            while i < ar.len() && k < br.len() {
                match ar[i].cmp(&br[k]) {
                    std::cmp::Ordering::Less => {
                        push(ar[i], av[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        push(br[k], bv[k]);
                        k += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        push(ar[i], S::add(av[i], bv[k]));
                        i += 1;
                        k += 1;
                    }
                }
            }
            while i < ar.len() {
                push(ar[i], av[i]);
                i += 1;
            }
            while k < br.len() {
                push(br[k], bv[k]);
                k += 1;
            }
            (rows, vals)
        })
        .collect();
    assemble(shape, cols)
}

/// Hash-accumulates column `j` across all matrices, strictly in list
/// order, then sorts by row and drops annihilator entries.
fn hash_column<S: Semiring>(_s: S, mats: &[Csc<S::Elem>], j: usize) -> (Vec<Idx>, Vec<S::Elem>) {
    use std::collections::HashMap;
    let cap: usize = mats.iter().map(|m| m.col_nnz(j)).sum();
    let mut slot: HashMap<Idx, usize> = HashMap::with_capacity(cap);
    let mut entries: Vec<(Idx, S::Elem)> = Vec::with_capacity(cap);
    for mat in mats {
        for (&r, &v) in mat.col_rows(j).iter().zip(mat.col_vals(j)) {
            match slot.entry(r) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let at = *e.get();
                    entries[at].1 = S::add(entries[at].1, v);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(entries.len());
                    entries.push((r, v));
                }
            }
        }
    }
    entries.sort_unstable_by_key(|&(r, _)| r);
    entries.retain(|&(_, v)| !S::is_annihilator(v));
    entries.into_iter().unzip()
}

/// Statistics of a merging run, feeding Table III and the §VII-C text.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MergeStats {
    /// Largest element count over single merge operations — the peak
    /// memory proxy of Table III.
    pub peak_merge_elems: usize,
    /// Total elements passed through merge operations (work proxy).
    pub total_merged_elems: u64,
    /// Number of merge operations performed.
    pub merge_ops: usize,
    /// Virtual seconds of merge-lane occupancy (the sum of the merge
    /// spans' durations — merges no longer run on a private clock).
    pub merge_time: f64,
    /// Virtual seconds the host blocked on merge completion events.
    pub wait_time: f64,
}

impl MergeStats {
    /// Folds another accumulation into this one: peaks take the max,
    /// everything else adds (one phase's stats absorbed into a run's).
    pub fn absorb(&mut self, other: &MergeStats) {
        self.peak_merge_elems = self.peak_merge_elems.max(other.peak_merge_elems);
        self.total_merged_elems += other.total_merged_elems;
        self.merge_ops += other.merge_ops;
        self.merge_time += other.merge_time;
        self.wait_time += other.wait_time;
    }
}

/// Algorithm 2's merge trigger: after the `pushed`-th push (1-indexed),
/// how many top-of-stack entries merge. Zero on odd pushes; on even
/// pushes one more than the number of trailing doublings (`pushed = 2^a·b`
/// with `b` odd merges `a + 1` entries), so the stack mirrors merge sort.
pub fn algorithm2_merge_count(pushed: usize) -> usize {
    let mut n = 0usize;
    let mut j = pushed;
    while j != 0 && j.is_multiple_of(2) {
        n += 1;
        j /= 2;
    }
    if n == 0 {
        0
    } else {
        n + 1
    }
}

/// Clock-free Algorithm 2 stack merger: real merging work and element
/// statistics (`peak_merge_elems`, `total_merged_elems`, `merge_ops`)
/// with **no** time accounting — timing belongs to the executor layer.
/// Used by the ablation/bench harnesses; the pipeline drives the same
/// schedule through `Executor::submit_merge` instead.
pub struct StackMerger {
    model: MachineModel,
    policy: MergeKernelPolicy,
    shape: (usize, usize),
    stack: Vec<Csc<f64>>,
    pushed: usize,
    stats: MergeStats,
}

impl StackMerger {
    /// New merger for slabs of the given shape. The model only feeds the
    /// `Auto` kernel selection rule; no durations are charged.
    pub fn new(model: MachineModel, policy: MergeKernelPolicy, shape: (usize, usize)) -> Self {
        Self {
            model,
            policy,
            shape,
            stack: Vec::new(),
            pushed: 0,
            stats: MergeStats::default(),
        }
    }

    /// Pushes the next stage's slab, running any merges Algorithm 2
    /// triggers.
    pub fn push(&mut self, slab: Csc<f64>) {
        self.stack.push(slab);
        self.pushed += 1;
        let count = algorithm2_merge_count(self.pushed);
        if count > 0 {
            self.merge_top(count);
        }
    }

    /// Final merge of whatever remains; empty input yields an empty
    /// matrix of the configured shape.
    pub fn finish(&mut self) -> Csc<f64> {
        if self.stack.len() > 1 {
            self.merge_top(self.stack.len());
        }
        self.stack
            .pop()
            .unwrap_or_else(|| Csc::zero(self.shape.0, self.shape.1))
    }

    fn merge_top(&mut self, count: usize) {
        let at = self.stack.len() - count;
        let tail: Vec<Csc<f64>> = self.stack.split_off(at);
        let elems: usize = tail.iter().map(Csc::nnz).sum();
        let kernel = match self.policy {
            MergeKernelPolicy::Fixed(k) => k,
            MergeKernelPolicy::Auto => select_merge_kernel(&self.model, elems as u64, count),
        };
        self.stats.peak_merge_elems = self.stats.peak_merge_elems.max(elems);
        self.stats.total_merged_elems += elems as u64;
        self.stats.merge_ops += 1;
        self.stack.push(merge_algo(kernel).merge(&tail, self.shape));
    }

    /// Accumulated element statistics (time fields stay zero).
    pub fn stats(&self) -> MergeStats {
        self.stats
    }

    /// Number of slabs currently on the stack.
    pub fn stack_len(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_sparse::{Boolean, MinPlus};
    use hipmcl_spgemm::testutil::random_csc;
    use proptest::prelude::*;

    #[test]
    fn merge_stats_absorb_maxes_peak_and_sums_rest() {
        let mut a = MergeStats {
            peak_merge_elems: 10,
            total_merged_elems: 100,
            merge_ops: 3,
            merge_time: 1.0,
            wait_time: 0.5,
        };
        let b = MergeStats {
            peak_merge_elems: 7,
            total_merged_elems: 50,
            merge_ops: 2,
            merge_time: 0.25,
            wait_time: 1.5,
        };
        a.absorb(&b);
        assert_eq!(a.peak_merge_elems, 10, "peak takes the max");
        assert_eq!(a.total_merged_elems, 150);
        assert_eq!(a.merge_ops, 5);
        assert_eq!(a.merge_time, 1.25);
        assert_eq!(a.wait_time, 2.0);
        // Larger incoming peak wins.
        a.absorb(&MergeStats {
            peak_merge_elems: 99,
            ..MergeStats::default()
        });
        assert_eq!(a.peak_merge_elems, 99);
    }

    fn slabs(n: usize, count: usize) -> Vec<Csc<f64>> {
        (0..count)
            .map(|i| random_csc(n, n, n * 3, 100 + i as u64))
            .collect()
    }

    fn reference_sum(mats: &[Csc<f64>]) -> Csc<f64> {
        mats.iter()
            .skip(1)
            .fold(mats[0].clone(), |acc, m| acc.add_elementwise(m))
    }

    #[test]
    fn kway_merge_matches_elementwise_sum() {
        for k in [1usize, 2, 3, 4, 7, 8] {
            let mats = slabs(12, k);
            let got = kway_merge(&mats, (12, 12));
            got.assert_valid();
            let want = reference_sum(&mats);
            assert!(got.max_abs_diff(&want) < 1e-9, "k={k}");
            assert_eq!(got.nnz(), want.nnz(), "k={k}");
        }
    }

    #[test]
    fn kway_merge_empty_slice_returns_empty_of_shape() {
        let merged = kway_merge(&[], (7, 9));
        merged.assert_valid();
        assert_eq!((merged.nrows(), merged.ncols()), (7, 9));
        assert_eq!(merged.nnz(), 0);
    }

    #[test]
    fn kway_merge_drops_cancellation() {
        let a = random_csc(8, 8, 20, 1);
        let mut b = a.clone();
        for v in &mut b.vals {
            *v = -*v;
        }
        let merged = kway_merge(&[a, b], (8, 8));
        assert_eq!(merged.nnz(), 0, "exact cancellation drops all entries");
    }

    #[test]
    fn all_kernels_match_elementwise_sum() {
        for k in [2usize, 3, 5, 8] {
            let mats = slabs(10, k);
            let want = reference_sum(&mats);
            for kernel in hipmcl_comm::MergeKernel::all() {
                let got = merge_algo(kernel).merge(&mats, (10, 10));
                got.assert_valid();
                assert!(got.max_abs_diff(&want) < 1e-9, "{kernel:?} k={k}");
                assert_eq!(got.nnz(), want.nnz(), "{kernel:?} k={k}");
            }
        }
    }

    #[test]
    fn selection_rule_follows_model_crossovers() {
        let m = MachineModel::summit();
        assert_eq!(select_merge_kernel(&m, 100_000, 2), MergeKernel::Pairwise);
        assert_eq!(select_merge_kernel(&m, 100_000, 3), MergeKernel::Heap);
        assert_eq!(select_merge_kernel(&m, 100_000, 4), MergeKernel::Hash);
        assert_eq!(select_merge_kernel(&m, 100_000, 16), MergeKernel::Hash);
        // A tiny merge cannot amortize the hash table setup.
        assert_eq!(select_merge_kernel(&m, 100, 8), MergeKernel::Heap);
    }

    #[test]
    fn algorithm2_schedule_matches_paper() {
        // Pushes 2,4,6,8 trigger merges of 2,3,2,4 lists respectively.
        let counts: Vec<usize> = (1..=8).map(algorithm2_merge_count).collect();
        assert_eq!(counts, vec![0, 2, 0, 3, 0, 2, 0, 4]);
    }

    #[test]
    fn stack_merger_follows_algorithm2_and_matches_sum() {
        for k in [1usize, 2, 3, 4, 5, 8] {
            let mats = slabs(10, k);
            let want = reference_sum(&mats);
            let mut sm =
                StackMerger::new(MachineModel::summit(), MergeKernelPolicy::Auto, (10, 10));
            let mut ops = Vec::new();
            for m in &mats {
                let before = sm.stats().merge_ops;
                sm.push(m.clone());
                if sm.stats().merge_ops > before {
                    ops.push(sm.pushed);
                }
            }
            if k == 8 {
                assert_eq!(ops, vec![2, 4, 6, 8]);
                assert_eq!(sm.stack_len(), 1, "8 = 2^3 collapses to one slab");
            }
            let got = sm.finish();
            assert!(got.max_abs_diff(&want) < 1e-9, "k={k}");
        }
    }

    #[test]
    fn stack_merger_empty_finish_returns_zero_shape() {
        let mut sm = StackMerger::new(MachineModel::summit(), MergeKernelPolicy::Auto, (5, 6));
        let out = sm.finish();
        assert_eq!((out.nrows(), out.ncols(), out.nnz()), (5, 6, 0));
    }

    #[test]
    fn binary_peak_memory_beats_multiway_on_overlapping_slabs() {
        // Heavily overlapping patterns: early merges compress, so the
        // binary scheme's largest merge holds fewer elements (Table III).
        let base = random_csc(40, 40, 600, 42);
        let mats: Vec<Csc<f64>> = (0..8)
            .map(|i| {
                let mut m = base.clone();
                for v in &mut m.vals {
                    *v += i as f64 * 0.01;
                }
                m
            })
            .collect();

        let multiway_peak: usize = mats.iter().map(Csc::nnz).sum();
        let mut sm = StackMerger::new(MachineModel::summit(), MergeKernelPolicy::Auto, (40, 40));
        for m in &mats {
            sm.push(m.clone());
        }
        let _ = sm.finish();
        assert!(
            sm.stats().peak_merge_elems < multiway_peak,
            "binary {} vs multiway {}",
            sm.stats().peak_merge_elems,
            multiway_peak
        );
    }

    /// Random stage-product sets with deliberate cancellation: a base set
    /// of random slabs, optionally including the exact negation of one of
    /// them so entries cancel to exact zero mid-accumulation.
    fn product_set(n: usize, k: usize, seed: u64, with_cancel: bool) -> Vec<Csc<f64>> {
        let mut mats = slabs(n, k);
        for (i, m) in mats.iter_mut().enumerate() {
            for v in &mut m.vals {
                // Mixed signs so partial sums can hit exact zero.
                if (i + 1) % 2 == 0 {
                    *v = -*v;
                }
            }
        }
        if with_cancel {
            let mut neg = random_csc(n, n, n * 3, 100 + (seed % k as u64));
            for v in &mut neg.vals {
                *v = -*v;
            }
            mats.push(neg);
        }
        mats
    }

    proptest! {
        /// All three merge kernels produce bit-identical CSC outputs —
        /// values AND sparsity structure, including entries removed by
        /// exact-zero cancellation.
        #[test]
        fn merge_kernels_are_bit_identical(
            n in 4usize..24,
            k in 2usize..9,
            seed in 0u64..32,
            with_cancel in proptest::prelude::any::<bool>(),
        ) {
            let mats = product_set(n, k, seed, with_cancel);
            let shape = (n, n);
            let heap = merge_algo(MergeKernel::Heap).merge(&mats, shape);
            let pairwise = merge_algo(MergeKernel::Pairwise).merge(&mats, shape);
            let hash = merge_algo(MergeKernel::Hash).merge(&mats, shape);
            heap.assert_valid();
            // `Csc: PartialEq` compares colptr, rowidx and vals exactly —
            // bitwise equality of both structure and floats.
            prop_assert_eq!(&heap, &pairwise);
            prop_assert_eq!(&heap, &hash);
        }

        /// Min-plus: the same three kernels stay bit-identical when ⊕ is
        /// `min` and the annihilator is `+∞`. One slab carries explicit
        /// `+∞` entries: positions where *every* contribution is `+∞`
        /// must be dropped by all kernels alike (exact-annihilator
        /// cancellation), while positions that also receive a finite
        /// value must keep the finite minimum.
        #[test]
        fn merge_kernels_bit_identical_under_min_plus(
            n in 4usize..24,
            k in 2usize..9,
            seed in 0u64..32,
            with_cancel in proptest::prelude::any::<bool>(),
        ) {
            let s = MinPlus;
            let mut mats = slabs(n, k);
            if with_cancel {
                // Annihilator slab: all entries are +∞ ("no path").
                let mut inf = random_csc(n, n, n * 3, 500 + seed);
                for v in &mut inf.vals {
                    *v = f64::INFINITY;
                }
                mats.push(inf);
            }
            let shape = (n, n);
            let heap = merge_with(s, MergeKernel::Heap, &mats, shape);
            let pairwise = merge_with(s, MergeKernel::Pairwise, &mats, shape);
            let hash = merge_with(s, MergeKernel::Hash, &mats, shape);
            heap.assert_valid();
            prop_assert_eq!(&heap, &pairwise);
            prop_assert_eq!(&heap, &hash);
            prop_assert!(
                heap.vals.iter().all(|v| v.is_finite()),
                "accumulated +∞ entries must be dropped, not stored"
            );
        }

        /// Boolean: bit-identity when ⊕ is `∨` and the annihilator is
        /// `false`, including explicit stored `false` entries that must
        /// vanish unless some list contributes `true` at that position.
        #[test]
        fn merge_kernels_bit_identical_under_boolean(
            n in 4usize..24,
            k in 2usize..9,
            seed in 0u64..32,
            with_cancel in proptest::prelude::any::<bool>(),
        ) {
            let s = Boolean;
            let mut mats: Vec<Csc<bool>> = slabs(n, k)
                .iter()
                .map(|m| m.map_values(|v| v > 1.0))
                .collect();
            if with_cancel {
                // Annihilator slab: every stored entry is `false`.
                let f = random_csc(n, n, n * 3, 700 + seed).map_values(|_| false);
                mats.push(f);
            }
            let shape = (n, n);
            let heap = merge_with(s, MergeKernel::Heap, &mats, shape);
            let pairwise = merge_with(s, MergeKernel::Pairwise, &mats, shape);
            let hash = merge_with(s, MergeKernel::Hash, &mats, shape);
            heap.assert_valid();
            prop_assert_eq!(&heap, &pairwise);
            prop_assert_eq!(&heap, &hash);
            prop_assert!(
                heap.vals.iter().all(|&v| v),
                "an OR-accumulation can only store true entries"
            );
        }
    }
}
