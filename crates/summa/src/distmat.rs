//! 2D block-distributed sparse matrices on the SUMMA process grid.
//!
//! An `m × n` matrix on a `√P × √P` grid is split into balanced row and
//! column stripes ([`hipmcl_sparse::util::even_chunk`]); the process at
//! grid `(i, j)` owns block `(i, j)` with local indices. Blocks are stored
//! as CSC for compute and shipped as CSC too; [`DistMatrix::dcsc_bytes`]
//! reports what the hypersparse DCSC representation would occupy, which is
//! what the broadcast payloads are charged as (HipMCL broadcasts DCSC).

use hipmcl_comm::collectives::{allreduce, gather};
use hipmcl_comm::ProcGrid;
use hipmcl_sparse::convert::{gather_2d, split_2d};
use hipmcl_sparse::util::even_chunk;
use hipmcl_sparse::{Csc, Dcsc, PlusTimes, Semiring, Triples, Value};

/// One rank's block of a 2D-distributed sparse matrix.
///
/// Generic over the element type; `DistMatrix` with no parameter remains
/// the plus-times `f64` matrix the MCL driver works with.
#[derive(Clone, Debug, PartialEq)]
pub struct DistMatrix<T: Value = f64> {
    /// The local block, in local indices.
    pub local: Csc<T>,
    /// Global row count.
    pub nrows_global: usize,
    /// Global column count.
    pub ncols_global: usize,
}

impl<T: Value> DistMatrix<T> {
    /// Builds this rank's block from a globally replicated matrix. Every
    /// rank calls this with the *same* `global` (e.g. generated from a
    /// shared seed); no communication happens. Duplicate triples are
    /// combined with the semiring's `⊕`.
    pub fn from_global_in<S: Semiring<Elem = T>>(
        s: S,
        grid: &ProcGrid,
        global: &Triples<T>,
    ) -> Self {
        let blocks = split_2d(global, grid.side, grid.side);
        let mine = &blocks[grid.row * grid.side + grid.col];
        Self {
            local: Csc::from_triples_in(s, mine),
            nrows_global: global.nrows(),
            ncols_global: global.ncols(),
        }
    }

    /// Scatter-based construction: rank 0 holds the global matrix and
    /// sends each rank its block (collective). Duplicates combine with `⊕`.
    pub fn scatter_from_root_in<S: Semiring<Elem = T>>(
        s: S,
        grid: &ProcGrid,
        global: Option<&Triples<T>>,
    ) -> Self {
        let comm = &grid.world;
        const TAG: u64 = 0x5CA7;
        if comm.rank() == 0 {
            let g = global.expect("root must supply the global matrix");
            let blocks = split_2d(g, grid.side, grid.side);
            for r in (1..comm.size()).rev() {
                comm.send(r, TAG, (blocks[r].clone(), g.nrows(), g.ncols()));
            }
            Self {
                local: Csc::from_triples_in(s, &blocks[0]),
                nrows_global: g.nrows(),
                ncols_global: g.ncols(),
            }
        } else {
            let (block, m, n): (Triples<T>, usize, usize) = comm.recv(0, TAG);
            Self {
                local: Csc::from_triples_in(s, &block),
                nrows_global: m,
                ncols_global: n,
            }
        }
    }

    /// Gathers the matrix to rank 0 (others get `None`). Collective.
    /// Blocks live in disjoint index ranges, so `⊕` only resolves
    /// duplicates that already coexisted within one block.
    pub fn gather_to_root_in<S: Semiring<Elem = T>>(
        &self,
        s: S,
        grid: &ProcGrid,
    ) -> Option<Csc<T>> {
        let blocks = gather(&grid.world, 0, self.local.to_triples());
        blocks.map(|blocks| {
            let t = gather_2d(
                &blocks,
                self.nrows_global,
                self.ncols_global,
                grid.side,
                grid.side,
            );
            Csc::from_triples_in(s, &t)
        })
    }

    /// Global nonzero count (collective all-reduce).
    pub fn nnz_global(&self, grid: &ProcGrid) -> u64 {
        allreduce(&grid.world, self.local.nnz() as u64, |a, b| a + b)
    }

    /// Global row range of this rank's block.
    pub fn row_range(&self, grid: &ProcGrid) -> std::ops::Range<usize> {
        even_chunk(self.nrows_global, grid.side, grid.row)
    }

    /// Global column range of this rank's block.
    pub fn col_range(&self, grid: &ProcGrid) -> std::ops::Range<usize> {
        even_chunk(self.ncols_global, grid.side, grid.col)
    }

    /// Bytes of the local block in hypersparse DCSC form — the size
    /// HipMCL's SUMMA broadcasts actually move (§III-B).
    pub fn dcsc_bytes(&self) -> usize {
        Dcsc::from_csc(&self.local).bytes()
    }

    /// An empty distributed matrix with the same global shape as `self`.
    pub fn empty_like(&self, grid: &ProcGrid) -> Self {
        Self {
            local: Csc::zero(self.row_range(grid).len(), self.col_range(grid).len()),
            nrows_global: self.nrows_global,
            ncols_global: self.ncols_global,
        }
    }
}

/// Plus-times convenience constructors — the historical f64 API.
impl<T: Value> DistMatrix<T>
where
    PlusTimes<T>: Semiring<Elem = T>,
{
    /// [`DistMatrix::from_global_in`] under plus-times.
    pub fn from_global(grid: &ProcGrid, global: &Triples<T>) -> Self {
        Self::from_global_in(PlusTimes::new(), grid, global)
    }

    /// [`DistMatrix::scatter_from_root_in`] under plus-times.
    pub fn scatter_from_root(grid: &ProcGrid, global: Option<&Triples<T>>) -> Self {
        Self::scatter_from_root_in(PlusTimes::new(), grid, global)
    }

    /// [`DistMatrix::gather_to_root_in`] under plus-times.
    pub fn gather_to_root(&self, grid: &ProcGrid) -> Option<Csc<T>> {
        self.gather_to_root_in(PlusTimes::new(), grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_comm::{MachineModel, Universe};
    use hipmcl_sparse::Idx;
    use rand::{Rng, SeedableRng};

    fn random_global(n: usize, nnz: usize, seed: u64) -> Triples<f64> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = Triples::new(n, n);
        for _ in 0..nnz {
            t.push(
                rng.gen_range(0..n) as Idx,
                rng.gen_range(0..n) as Idx,
                rng.gen_range(0.5..1.5),
            );
        }
        t.sum_duplicates();
        t
    }

    #[test]
    fn from_global_then_gather_roundtrips() {
        let global = random_global(20, 80, 1);
        let want = Csc::from_triples(&global);
        for p in [1usize, 4, 9] {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                let grid = ProcGrid::new(comm);
                let dm = DistMatrix::from_global(&grid, &random_global(20, 80, 1));
                dm.gather_to_root(&grid)
            });
            assert_eq!(results[0].as_ref(), Some(&want), "p={p}");
            for r in &results[1..] {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn scatter_matches_from_global() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let global = random_global(15, 60, 2);
            let a = DistMatrix::from_global(&grid, &global);
            let b = DistMatrix::scatter_from_root(
                &grid,
                if grid.world.rank() == 0 {
                    Some(&global)
                } else {
                    None
                },
            );
            a == b
        });
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn nnz_global_sums_blocks() {
        let global = random_global(18, 70, 3);
        let want = global.nnz() as u64;
        let results = Universe::run(9, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let dm = DistMatrix::from_global(&grid, &random_global(18, 70, 3));
            dm.nnz_global(&grid)
        });
        assert!(results.iter().all(|&n| n == want));
    }

    #[test]
    fn ranges_partition_global_dims() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let dm = DistMatrix::from_global(&grid, &random_global(11, 30, 4));
            let rr = dm.row_range(&grid);
            let cr = dm.col_range(&grid);
            assert_eq!(dm.local.nrows(), rr.len());
            assert_eq!(dm.local.ncols(), cr.len());
            (rr.start, rr.end, cr.start, cr.end)
        });
        // 11 rows over 2 stripes: 6 + 5.
        assert_eq!(results[0], (0, 6, 0, 6));
        assert_eq!(results[3], (6, 11, 6, 11));
    }

    #[test]
    fn dcsc_bytes_smaller_for_hypersparse_blocks() {
        let results = Universe::run(9, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            // 90x90 with only 40 nonzeros: blocks are hypersparse.
            let dm = DistMatrix::from_global(&grid, &random_global(90, 40, 5));
            (dm.dcsc_bytes(), dm.local.bytes())
        });
        let (d, c): (usize, usize) = results
            .iter()
            .fold((0, 0), |(d, c), &(dd, cc)| (d + dd, c + cc));
        assert!(d < c, "DCSC total {d} should beat CSC total {c}");
    }
}
