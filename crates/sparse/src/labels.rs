//! String-labelled graph ingestion.
//!
//! Real HipMCL inputs are protein-similarity edge lists keyed by protein
//! *names* (`proteinA proteinB score`); the solver works on dense integer
//! ids and maps back when writing clusters. This module provides that
//! dictionary layer: [`LabelMap`] interns labels to dense ids, and
//! [`read_labelled_edge_list`] parses the HipMCL-style input format.

use crate::io::IoError;
use crate::triples::Triples;
use crate::Idx;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

/// Bidirectional mapping between string labels and dense vertex ids.
#[derive(Clone, Debug, Default)]
pub struct LabelMap {
    to_id: HashMap<String, Idx>,
    to_label: Vec<String>,
}

impl LabelMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `label`, returning its dense id (existing or fresh).
    pub fn intern(&mut self, label: &str) -> Idx {
        if let Some(&id) = self.to_id.get(label) {
            return id;
        }
        let id = self.to_label.len() as Idx;
        self.to_id.insert(label.to_string(), id);
        self.to_label.push(label.to_string());
        id
    }

    /// Id of `label`, if interned.
    pub fn id_of(&self, label: &str) -> Option<Idx> {
        self.to_id.get(label).copied()
    }

    /// Label of `id`.
    pub fn label_of(&self, id: Idx) -> Option<&str> {
        self.to_label.get(id as usize).map(String::as_str)
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.to_label.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.to_label.is_empty()
    }
}

/// Reads a labelled edge list: `srcLabel dstLabel [weight]` per line,
/// `#`/`%` comments. Returns the graph (square, sized to the label count)
/// and the label dictionary. This is the shape of HipMCL's protein
/// similarity inputs.
pub fn read_labelled_edge_list<R: Read>(reader: R) -> Result<(Triples<f64>, LabelMap), IoError> {
    let mut map = LabelMap::new();
    let mut entries: Vec<(Idx, Idx, f64)> = Vec::new();
    for line in BufReader::new(reader).lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut toks = t.split_whitespace();
        let a = toks
            .next()
            .ok_or_else(|| IoError::Parse(format!("short line: {t}")))?;
        let b = toks
            .next()
            .ok_or_else(|| IoError::Parse(format!("short line: {t}")))?;
        let w: f64 = match toks.next() {
            Some(tok) => tok
                .parse()
                .map_err(|e| IoError::Parse(format!("bad weight in '{t}': {e}")))?,
            None => 1.0,
        };
        let (ia, ib) = (map.intern(a), map.intern(b));
        entries.push((ia, ib, w));
    }
    let n = map.len();
    let mut t = Triples::with_capacity(n, n, entries.len());
    for (r, c, v) in entries {
        t.push(r, c, v);
    }
    Ok((t, map))
}

/// Writes clusters with labels restored: one line per cluster, tab
/// separated member labels — the MCL output convention.
pub fn write_labelled_clusters<W: Write>(
    w: &mut W,
    clusters: &[Vec<u32>],
    map: &LabelMap,
) -> Result<(), IoError> {
    for members in clusters {
        let mut first = true;
        for &v in members {
            let label = map
                .label_of(v)
                .ok_or_else(|| IoError::Parse(format!("unknown vertex id {v}")))?;
            if first {
                write!(w, "{label}")?;
                first = false;
            } else {
                write!(w, "\t{label}")?;
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut m = LabelMap::new();
        let a = m.intern("P12345");
        let b = m.intern("Q67890");
        assert_eq!(m.intern("P12345"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(m.len(), 2);
        assert_eq!(m.label_of(1), Some("Q67890"));
        assert_eq!(m.id_of("Q67890"), Some(1));
        assert_eq!(m.id_of("missing"), None);
    }

    #[test]
    fn labelled_edge_list_roundtrip() {
        let text = "# similarity scores\nprotA protB 0.9\nprotB protC 0.5\nprotA protC\n";
        let (t, map) = read_labelled_edge_list(text.as_bytes()).unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(t.nrows(), 3);
        let entries: Vec<_> = t.iter().collect();
        assert_eq!(entries[0], (0, 1, 0.9));
        assert_eq!(entries[1], (1, 2, 0.5));
        assert_eq!(entries[2], (0, 2, 1.0), "missing weight defaults to 1");
    }

    #[test]
    fn labelled_edge_list_rejects_garbage_weight() {
        let text = "a b notanumber\n";
        assert!(read_labelled_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn labelled_cluster_output() {
        let mut map = LabelMap::new();
        map.intern("x");
        map.intern("y");
        map.intern("z");
        let mut buf = Vec::new();
        write_labelled_clusters(&mut buf, &[vec![0, 2], vec![1]], &map).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "x\tz\ny\n");
    }

    #[test]
    fn empty_input_empty_graph() {
        let (t, map) = read_labelled_edge_list("".as_bytes()).unwrap();
        assert_eq!(t.nnz(), 0);
        assert!(map.is_empty());
    }
}
