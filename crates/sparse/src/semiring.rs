//! Value types and semirings.
//!
//! The old `Scalar` trait bundled two concerns: *what a stored value is*
//! (copyable, comparable, convertible to `f64` for instrumentation) and
//! *how values combine* (the `(add, mul)` pair of the semiring). Splitting
//! them lets the same storage formats and kernels run MCL's `(+, ×)`,
//! shortest-path `(min, +)`, bottleneck `(max, min)` and reachability
//! `(∨, ∧)` without duplicating code:
//!
//! * [`Value`] — the storage contract. Says nothing about arithmetic.
//! * [`Semiring`] — a zero-sized instance carrying the operations and the
//!   identities. Passed **by value** (e.g.
//!   `t.sum_duplicates_in(MinPlus)`) so the element type is inferred from
//!   the data structure, not spelled at every call site.
//!
//! `Semiring::ZERO` is both the additive identity and the multiplicative
//! annihilator (`zero ⊗ x = zero`); [`Semiring::is_annihilator`] is the
//! check kernels use to drop entries after accumulation. For plus-times
//! that is the familiar "drop explicit zeros"; for min-plus it drops
//! `+∞` (no path); for boolean it drops `false`.

use std::marker::PhantomData;

/// Storage contract for values held in sparse matrices.
///
/// Deliberately arithmetic-free: a `Value` can be stored, copied across
/// threads, compared, defaulted (for scratch buffers and placeholder
/// slots) and lossily inspected as `f64` by instrumentation. All
/// arithmetic goes through a [`Semiring`]. Values must also be wire
/// encodable/decodable ([`crate::wire`]) so any matrix built over any
/// semiring can cross a byte-oriented transport.
pub trait Value:
    Copy
    + Send
    + Sync
    + PartialEq
    + PartialOrd
    + Default
    + std::fmt::Debug
    + crate::wire::WireEncode
    + crate::wire::WireDecode
    + 'static
{
    /// Lossy conversion to `f64`, used by instrumentation and statistics.
    fn to_f64(self) -> f64;
}

macro_rules! impl_value_num {
    ($($t:ty),*) => {$(
        impl Value for $t {
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    )*};
}

impl_value_num!(f64, f32, u32, u64, i64);

impl Value for bool {
    #[inline(always)]
    fn to_f64(self) -> f64 {
        if self {
            1.0
        } else {
            0.0
        }
    }
}

/// A semiring `(⊕, ⊗, ZERO, ONE)` over element type [`Semiring::Elem`].
///
/// Implementors are zero-sized tokens ([`PlusTimes`], [`MinPlus`],
/// [`MaxMin`], [`Boolean`]) passed by value into the `*_in` constructors
/// and kernels. `ZERO` must be the identity of `add` *and* the
/// annihilator of `mul`; `ONE` the identity of `mul`. Kernels assume both
/// laws: they skip `ZERO` operands and never materialize `ZERO` outputs.
pub trait Semiring: Copy + Send + Sync + Default + std::fmt::Debug + 'static {
    /// The element type the operations act on.
    type Elem: Value;
    /// Additive identity and multiplicative annihilator.
    const ZERO: Self::Elem;
    /// Multiplicative identity.
    const ONE: Self::Elem;

    /// Semiring addition `a ⊕ b`.
    fn add(a: Self::Elem, b: Self::Elem) -> Self::Elem;
    /// Semiring multiplication `a ⊗ b`.
    fn mul(a: Self::Elem, b: Self::Elem) -> Self::Elem;
    /// `true` if `v` equals the annihilator — such entries are dropped
    /// after accumulation instead of being stored.
    #[inline(always)]
    fn is_annihilator(v: Self::Elem) -> bool {
        v == Self::ZERO
    }
}

/// The numeric `(+, ×)` semiring — MCL's arithmetic.
///
/// Generic over the element type so `f64`, `f32` and the integer counter
/// types share one token. Integer instances saturate instead of wrapping:
/// symbolic nnz accumulation on dense columns must pin at the type's max,
/// not silently wrap past it.
pub struct PlusTimes<T>(PhantomData<T>);

impl<T> PlusTimes<T> {
    /// The (zero-sized) plus-times token.
    pub const fn new() -> Self {
        Self(PhantomData)
    }
}

impl<T> Clone for PlusTimes<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PlusTimes<T> {}
impl<T> Default for PlusTimes<T> {
    fn default() -> Self {
        Self::new()
    }
}
impl<T> std::fmt::Debug for PlusTimes<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PlusTimes")
    }
}

macro_rules! plus_times_float {
    ($t:ty) => {
        impl Semiring for PlusTimes<$t> {
            type Elem = $t;
            const ZERO: $t = 0.0;
            const ONE: $t = 1.0;
            #[inline(always)]
            fn add(a: $t, b: $t) -> $t {
                a + b
            }
            #[inline(always)]
            fn mul(a: $t, b: $t) -> $t {
                a * b
            }
        }
    };
}

macro_rules! plus_times_int {
    ($t:ty) => {
        impl Semiring for PlusTimes<$t> {
            type Elem = $t;
            const ZERO: $t = 0;
            const ONE: $t = 1;
            #[inline(always)]
            fn add(a: $t, b: $t) -> $t {
                a.saturating_add(b)
            }
            #[inline(always)]
            fn mul(a: $t, b: $t) -> $t {
                a.saturating_mul(b)
            }
        }
    };
}

plus_times_float!(f64);
plus_times_float!(f32);
plus_times_int!(u32);
plus_times_int!(u64);
plus_times_int!(i64);

/// The tropical `(min, +)` semiring over `f64`: path lengths compose by
/// addition, alternatives by minimum. `ZERO = +∞` (no path),
/// `ONE = 0` (the empty path). Repeated squaring of an adjacency matrix
/// under min-plus performs all-pairs shortest path hop-doubling.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type Elem = f64;
    const ZERO: f64 = f64::INFINITY;
    const ONE: f64 = 0.0;
    #[inline(always)]
    fn add(a: f64, b: f64) -> f64 {
        a.min(b)
    }
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        // Guard the annihilator law: `∞ + (-∞)` would be NaN, and even
        // `∞ + finite` relies on IEEE semantics. Make `ZERO ⊗ x = ZERO`
        // explicit so kernels may combine in any order.
        if a == f64::INFINITY || b == f64::INFINITY {
            f64::INFINITY
        } else {
            a + b
        }
    }
}

/// The bottleneck `(max, min)` semiring over `f64`: path capacity is the
/// minimum edge along the path, alternatives take the maximum.
/// `ZERO = -∞`, `ONE = +∞`.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxMin;

impl Semiring for MaxMin {
    type Elem = f64;
    const ZERO: f64 = f64::NEG_INFINITY;
    const ONE: f64 = f64::INFINITY;
    #[inline(always)]
    fn add(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        a.min(b)
    }
}

/// The boolean `(∨, ∧)` semiring: matrix powers compute reachability.
#[derive(Clone, Copy, Debug, Default)]
pub struct Boolean;

impl Semiring for Boolean {
    type Elem = bool;
    const ZERO: bool = false;
    const ONE: bool = true;
    #[inline(always)]
    fn add(a: bool, b: bool) -> bool {
        a | b
    }
    #[inline(always)]
    fn mul(a: bool, b: bool) -> bool {
        a & b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_identities() {
        assert_eq!(PlusTimes::<f64>::add(PlusTimes::<f64>::ZERO, 3.5), 3.5);
        assert_eq!(PlusTimes::<f64>::mul(PlusTimes::<f64>::ONE, 3.5), 3.5);
        assert!(PlusTimes::<f64>::is_annihilator(0.0));
        assert!(!PlusTimes::<f64>::is_annihilator(1.0));
    }

    #[test]
    fn int_plus_times_saturates_at_boundary() {
        // Regression: symbolic nnz accumulation must pin at the max, not
        // wrap. The old Scalar impls used wrapping_add/wrapping_mul.
        assert_eq!(PlusTimes::<u32>::add(u32::MAX, 1), u32::MAX);
        assert_eq!(PlusTimes::<u32>::add(u32::MAX - 1, 1), u32::MAX);
        assert_eq!(PlusTimes::<u32>::mul(u32::MAX, 2), u32::MAX);
        assert_eq!(PlusTimes::<u64>::add(u64::MAX, u64::MAX), u64::MAX);
        assert_eq!(PlusTimes::<i64>::mul(i64::MAX, 2), i64::MAX);
        // Ordinary values are unaffected.
        assert_eq!(PlusTimes::<u64>::mul(2, 3), 6);
        assert_eq!(PlusTimes::<u32>::add(40, 2), 42);
    }

    #[test]
    fn min_plus_laws() {
        assert_eq!(MinPlus::add(3.0, 5.0), 3.0);
        assert_eq!(MinPlus::mul(3.0, 5.0), 8.0);
        // ZERO is the identity of add and the annihilator of mul.
        assert_eq!(MinPlus::add(MinPlus::ZERO, 7.0), 7.0);
        assert_eq!(MinPlus::mul(MinPlus::ZERO, 7.0), MinPlus::ZERO);
        assert_eq!(MinPlus::mul(7.0, MinPlus::ZERO), MinPlus::ZERO);
        // ONE is the identity of mul.
        assert_eq!(MinPlus::mul(MinPlus::ONE, 7.0), 7.0);
        // The NaN trap the annihilator guard exists for.
        assert_eq!(
            MinPlus::mul(MinPlus::ZERO, f64::NEG_INFINITY),
            MinPlus::ZERO
        );
        assert!(MinPlus::is_annihilator(f64::INFINITY));
        assert!(!MinPlus::is_annihilator(0.0));
    }

    #[test]
    fn max_min_laws() {
        assert_eq!(MaxMin::add(3.0, 5.0), 5.0);
        assert_eq!(MaxMin::mul(3.0, 5.0), 3.0);
        assert_eq!(MaxMin::add(MaxMin::ZERO, 7.0), 7.0);
        assert_eq!(MaxMin::mul(MaxMin::ZERO, 7.0), MaxMin::ZERO);
        assert_eq!(MaxMin::mul(MaxMin::ONE, 7.0), 7.0);
    }

    #[test]
    fn boolean_laws() {
        assert!(Boolean::add(true, false));
        assert!(!Boolean::add(false, false));
        assert!(Boolean::mul(true, true));
        assert!(!Boolean::mul(true, false));
        assert!(Boolean::is_annihilator(false));
        assert!(!Boolean::is_annihilator(true));
    }

    #[test]
    fn to_f64_roundtrips_small_values() {
        assert_eq!(42u32.to_f64(), 42.0);
        assert_eq!((-7i64).to_f64(), -7.0);
        assert_eq!(true.to_f64(), 1.0);
        assert_eq!(false.to_f64(), 0.0);
    }
}
