//! Connected components via union-find, used to extract the final clusters
//! from the converged MCL matrix (Algorithm 1, line 6).
//!
//! The converged matrix is a disjoint union of near-star subgraphs, so a
//! sequential union-find over its nonzeros is effectively linear time and
//! far cheaper than any MCL iteration. A label-propagation alternative that
//! distributes over ranks lives in `hipmcl-summa::components`.

use crate::csc::Csc;
use crate::semiring::Value;

/// Disjoint-set forest with union by rank and path halving.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x` with path halving.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Unions the sets of `a` and `b`; returns `true` if they were separate.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        true
    }

    /// Compacts representatives into dense labels `0..k`; returns
    /// `(labels, k)`.
    pub fn labels(&mut self) -> (Vec<u32>, usize) {
        let n = self.len();
        let mut map = vec![u32::MAX; n];
        let mut labels = vec![0u32; n];
        let mut next = 0u32;
        for x in 0..n as u32 {
            let r = self.find(x);
            if map[r as usize] == u32::MAX {
                map[r as usize] = next;
                next += 1;
            }
            labels[x as usize] = map[r as usize];
        }
        (labels, next as usize)
    }
}

/// Connected components of the undirected graph underlying `m` (the pattern
/// of `m ∨ mᵀ`). Returns `(labels, number_of_components)` with labels dense
/// in `0..k`.
pub fn connected_components<T: Value>(m: &Csc<T>) -> (Vec<u32>, usize) {
    assert_eq!(m.nrows(), m.ncols(), "components need a square matrix");
    let mut uf = UnionFind::new(m.ncols());
    for j in 0..m.ncols() {
        for &r in m.col_rows(j) {
            uf.union(r, j as u32);
        }
    }
    uf.labels()
}

/// Groups vertex ids by component label: `clusters[c]` lists the vertices of
/// component `c`, each list sorted ascending.
pub fn clusters_from_labels(labels: &[u32], k: usize) -> Vec<Vec<u32>> {
    let mut clusters = vec![Vec::new(); k];
    for (v, &c) in labels.iter().enumerate() {
        clusters[c as usize].push(v as u32);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triples::Triples;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0), "already joined");
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(3));
        let (labels, k) = uf.labels();
        assert_eq!(k, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn components_of_two_triangles() {
        let mut t = Triples::new(6, 6);
        for &(a, b) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            t.push(a, b, 1.0);
        }
        let m = Csc::from_triples(&t);
        let (labels, k) = connected_components(&m);
        assert_eq!(k, 2);
        let clusters = clusters_from_labels(&labels, k);
        let mut sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
        sizes.sort();
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn directed_edges_still_connect() {
        // Only (0 -> 1) stored; pattern treated as undirected.
        let mut t = Triples::new(3, 3);
        t.push(0, 1, 1.0);
        let (labels, k) = connected_components(&Csc::from_triples(&t));
        assert_eq!(k, 2);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn empty_matrix_all_singletons() {
        let m = Csc::<f64>::zero(4, 4);
        let (labels, k) = connected_components(&m);
        assert_eq!(k, 4);
        assert_eq!(labels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn clusters_from_labels_sorted_members() {
        let labels = vec![1, 0, 1, 0, 1];
        let clusters = clusters_from_labels(&labels, 2);
        assert_eq!(clusters[0], vec![1, 3]);
        assert_eq!(clusters[1], vec![0, 2, 4]);
    }

    #[test]
    fn path_graph_single_component() {
        let n = 1000;
        let mut t = Triples::new(n, n);
        for i in 0..n - 1 {
            t.push(i as u32, (i + 1) as u32, 1.0);
        }
        let (_, k) = connected_components(&Csc::from_triples(&t));
        assert_eq!(k, 1);
    }
}
