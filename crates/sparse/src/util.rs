//! Small shared helpers: prefix sums, counting sort scaffolding.

/// Exclusive prefix sum in place: `v[i] := sum(v[..i])`, returns the total.
///
/// This is the standard bucket→pointer conversion used when building
/// compressed formats from counts.
pub fn exclusive_prefix_sum(v: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for x in v.iter_mut() {
        let c = *x;
        *x = acc;
        acc += c;
    }
    acc
}

/// Inclusive prefix sum in place, returns the total (last element).
pub fn inclusive_prefix_sum(v: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for x in v.iter_mut() {
        acc += *x;
        *x = acc;
    }
    acc
}

/// Returns `true` if `s` is sorted in strictly increasing order.
pub fn is_strictly_increasing<T: PartialOrd>(s: &[T]) -> bool {
    s.windows(2).all(|w| w[0] < w[1])
}

/// Rounds `x` up to the next multiple of `m` (`m > 0`).
pub fn round_up(x: usize, m: usize) -> usize {
    debug_assert!(m > 0);
    x.div_ceil(m) * m
}

/// The sentinel [`inverse_selection`] stores for indices that were dropped
/// from a selection.
pub const DROPPED: usize = usize::MAX;

/// Inverts a sorted index selection: given `keep` (strictly increasing old
/// indices, the new→old map produced alongside `Csc::select_cols`), returns
/// the old→new map of length `n_old` where kept indices map to their compact
/// position and dropped indices map to [`DROPPED`].
pub fn inverse_selection(n_old: usize, keep: &[usize]) -> Vec<usize> {
    debug_assert!(is_strictly_increasing(keep));
    let mut inv = vec![DROPPED; n_old];
    for (new, &old) in keep.iter().enumerate() {
        inv[old] = new;
    }
    inv
}

/// Splits `n` items into `parts` contiguous chunks as evenly as possible and
/// returns the half-open range of chunk `i`.
///
/// The first `n % parts` chunks get one extra item, matching the block
/// distribution CombBLAS uses for 2D matrix decomposition.
pub fn even_chunk(n: usize, parts: usize, i: usize) -> std::ops::Range<usize> {
    debug_assert!(parts > 0 && i < parts);
    let base = n / parts;
    let extra = n % parts;
    let start = i * base + i.min(extra);
    let len = base + usize::from(i < extra);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_prefix_sum_basic() {
        let mut v = vec![3, 0, 2, 5];
        let total = exclusive_prefix_sum(&mut v);
        assert_eq!(total, 10);
        assert_eq!(v, vec![0, 3, 3, 5]);
    }

    #[test]
    fn exclusive_prefix_sum_empty() {
        let mut v: Vec<usize> = vec![];
        assert_eq!(exclusive_prefix_sum(&mut v), 0);
    }

    #[test]
    fn inclusive_prefix_sum_basic() {
        let mut v = vec![1, 2, 3];
        let total = inclusive_prefix_sum(&mut v);
        assert_eq!(total, 6);
        assert_eq!(v, vec![1, 3, 6]);
    }

    #[test]
    fn strictly_increasing() {
        assert!(is_strictly_increasing(&[1, 2, 5]));
        assert!(!is_strictly_increasing(&[1, 1, 5]));
        assert!(is_strictly_increasing::<u32>(&[]));
        assert!(is_strictly_increasing(&[7]));
    }

    #[test]
    fn round_up_basic() {
        assert_eq!(round_up(0, 4), 0);
        assert_eq!(round_up(1, 4), 4);
        assert_eq!(round_up(8, 4), 8);
    }

    #[test]
    fn even_chunk_covers_everything_without_overlap() {
        for n in [0usize, 1, 7, 16, 100] {
            for parts in [1usize, 2, 3, 7, 16] {
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for i in 0..parts {
                    let r = even_chunk(n, parts, i);
                    assert_eq!(r.start, prev_end, "chunks must be contiguous");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, n);
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn inverse_selection_round_trips() {
        let keep = [1usize, 3, 4];
        let inv = inverse_selection(6, &keep);
        assert_eq!(inv, vec![DROPPED, 0, DROPPED, 1, 2, DROPPED]);
        for (new, &old) in keep.iter().enumerate() {
            assert_eq!(inv[old], new);
        }
        assert_eq!(inverse_selection(3, &[]), vec![DROPPED; 3]);
    }

    #[test]
    fn even_chunk_balanced() {
        // 10 items over 4 parts -> sizes 3,3,2,2
        let sizes: Vec<usize> = (0..4).map(|i| even_chunk(10, 4, i).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }
}
