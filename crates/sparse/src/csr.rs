//! Compressed sparse row (CSR) storage.
//!
//! CSR is the format consumed by the GPU SpGEMM library analogues
//! (bhsparse / nsparse / rmerge2 are all row-parallel). The paper's §III-B
//! observation — a matrix stored in CSC *is* its transpose stored in CSR —
//! is expressed here as the zero-copy [`Csr::from_csc_transpose`] /
//! [`Csr::into_csc_transpose`] pair: computing `Cᵀ = Bᵀ·Aᵀ` with CSR
//! kernels yields `C` in CSC with no conversion work.

use crate::csc::Csc;
use crate::semiring::Value;
use crate::util::is_strictly_increasing;
use crate::Idx;

/// Sparse matrix in compressed sparse row form. Column indices within each
/// row are sorted and unique (mirror of the [`Csc`] invariants).
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<T> {
    nrows: usize,
    ncols: usize,
    /// `rowptr[i]..rowptr[i+1]` is the index range of row `i`.
    pub rowptr: Vec<usize>,
    /// Column index of each nonzero, sorted within each row.
    pub colidx: Vec<Idx>,
    /// Value of each nonzero.
    pub vals: Vec<T>,
}

impl<T: Value> Csr<T> {
    /// Creates an empty `nrows × ncols` matrix.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            rowptr: vec![0; nrows + 1],
            colidx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Builds from raw parts, validating invariants.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<Idx>,
        vals: Vec<T>,
    ) -> Self {
        let m = Self {
            nrows,
            ncols,
            rowptr,
            colidx,
            vals,
        };
        m.assert_valid();
        m
    }

    /// Reinterprets a CSC matrix as the CSR of its transpose — zero copy in
    /// spirit (moves the arrays, swaps the dimensions). This is the §III-B
    /// trick: no physical conversion is needed to hand CSC data to a CSR
    /// kernel, as long as the kernel computes the transposed product.
    pub fn from_csc_transpose(csc: Csc<T>) -> Self {
        Self {
            nrows: csc.ncols(),
            ncols: csc.nrows(),
            rowptr: csc.colptr,
            colidx: csc.rowidx,
            vals: csc.vals,
        }
    }

    /// Inverse of [`Csr::from_csc_transpose`].
    pub fn into_csc_transpose(self) -> Csc<T> {
        Csc::from_parts(self.ncols, self.nrows, self.rowptr, self.colidx, self.vals)
    }

    /// Converts a CSC matrix of the *same* logical orientation into CSR
    /// (performs the actual transpose-of-transpose, `O(nnz + dims)`).
    pub fn from_csc(csc: &Csc<T>) -> Self {
        Self::from_csc_transpose(csc.transposed())
    }

    /// Converts to CSC of the same logical orientation.
    pub fn to_csc(&self) -> Csc<T> {
        self.clone().into_csc_transpose().transposed()
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of nonzeros in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// Column indices of row `i` (sorted).
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[Idx] {
        &self.colidx[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Values of row `i`, parallel to [`Csr::row_cols`].
    #[inline]
    pub fn row_vals(&self, i: usize) -> &[T] {
        &self.vals[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.rowptr.len() * std::mem::size_of::<usize>()
            + self.colidx.len() * std::mem::size_of::<Idx>()
            + self.vals.len() * std::mem::size_of::<T>()
    }

    /// Checks the structural invariants; panics on violation.
    pub fn assert_valid(&self) {
        assert_eq!(self.rowptr.len(), self.nrows + 1, "rowptr length");
        assert_eq!(self.rowptr[0], 0, "rowptr[0]");
        assert_eq!(*self.rowptr.last().unwrap(), self.nnz(), "rowptr end");
        assert_eq!(self.colidx.len(), self.vals.len(), "index/value parity");
        for i in 0..self.nrows {
            assert!(
                self.rowptr[i] <= self.rowptr[i + 1],
                "rowptr monotone at {i}"
            );
            let cols = self.row_cols(i);
            assert!(
                is_strictly_increasing(cols),
                "cols sorted+unique in row {i}"
            );
            if let Some(&last) = cols.last() {
                assert!((last as usize) < self.ncols, "col bound in row {i}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triples::Triples;

    fn sample_csc() -> Csc<f64> {
        let mut t = Triples::new(3, 4);
        t.push(0, 0, 2.0);
        t.push(2, 0, 5.0);
        t.push(1, 1, 3.0);
        t.push(2, 1, 1.0);
        t.push(0, 3, 4.0);
        Csc::from_triples(&t)
    }

    #[test]
    fn csc_transpose_view_is_free_and_consistent() {
        let csc = sample_csc();
        let csr = Csr::from_csc_transpose(csc.clone());
        // csr represents cscᵀ: (r,c,v) in csc appears as row c, col r.
        assert_eq!(csr.nrows(), 4);
        assert_eq!(csr.ncols(), 3);
        assert_eq!(csr.row_cols(0), &[0, 2]);
        assert_eq!(csr.row_vals(0), &[2.0, 5.0]);
        assert_eq!(csr.row_cols(3), &[0]);
        let back = csr.into_csc_transpose();
        assert_eq!(back, csc);
    }

    #[test]
    fn from_csc_same_orientation() {
        let csc = sample_csc();
        let csr = Csr::from_csc(&csc);
        csr.assert_valid();
        assert_eq!(csr.nrows(), 3);
        assert_eq!(csr.ncols(), 4);
        // Row 2 of the matrix holds (2,0,5.0) and (2,1,1.0).
        assert_eq!(csr.row_cols(2), &[0, 1]);
        assert_eq!(csr.row_vals(2), &[5.0, 1.0]);
        assert_eq!(csr.to_csc(), csc);
    }

    #[test]
    fn zero_is_valid() {
        let z = Csr::<f64>::zero(3, 9);
        z.assert_valid();
        assert_eq!(z.row_nnz(1), 0);
    }
}
