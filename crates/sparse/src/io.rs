//! Matrix Market I/O and a simple whitespace-delimited edge-list reader.
//!
//! HipMCL ingests protein-similarity networks as labelled edge lists /
//! Matrix Market files; this module provides the equivalents so real
//! datasets can be dropped into the reproduction.

use crate::csc::Csc;
use crate::triples::Triples;
use crate::Idx;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors raised by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or numeric parse failure with a line-level description.
    Parse(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a Matrix Market `coordinate real general|symmetric` file.
/// Symmetric inputs are expanded to a full pattern.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Triples<f64>, IoError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| IoError::Parse("empty file".into()))??;
    let h = header.to_ascii_lowercase();
    if !h.starts_with("%%matrixmarket matrix coordinate") {
        return Err(IoError::Parse(format!("unsupported header: {header}")));
    }
    let symmetric = h.contains("symmetric");
    let pattern = h.contains("pattern");

    // Skip comments, read the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| IoError::Parse("missing size line".into()))??;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break line;
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|e| IoError::Parse(format!("size line: {e}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(IoError::Parse(format!("bad size line: {size_line}")));
    }
    let (m, n, nnz) = (dims[0], dims[1], dims[2]);

    let mut t = Triples::with_capacity(m, n, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut toks = trimmed.split_whitespace();
        let i: usize = parse_tok(toks.next(), trimmed)?;
        let j: usize = parse_tok(toks.next(), trimmed)?;
        let v: f64 = if pattern {
            1.0
        } else {
            parse_tok(toks.next(), trimmed)?
        };
        if i == 0 || j == 0 || i > m || j > n {
            return Err(IoError::Parse(format!("index out of range: {trimmed}")));
        }
        t.push((i - 1) as Idx, (j - 1) as Idx, v);
        if symmetric && i != j {
            t.push((j - 1) as Idx, (i - 1) as Idx, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(IoError::Parse(format!(
            "expected {nnz} entries, found {seen}"
        )));
    }
    Ok(t)
}

fn parse_tok<T: std::str::FromStr>(tok: Option<&str>, line: &str) -> Result<T, IoError>
where
    T::Err: std::fmt::Display,
{
    tok.ok_or_else(|| IoError::Parse(format!("short line: {line}")))?
        .parse::<T>()
        .map_err(|e| IoError::Parse(format!("bad token in '{line}': {e}")))
}

/// Writes a matrix as Matrix Market `coordinate real general`.
pub fn write_matrix_market<W: Write>(w: &mut W, m: &Csc<f64>) -> Result<(), IoError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {v}", r + 1, c + 1)?;
    }
    Ok(())
}

/// Reads a whitespace-delimited edge list `src dst [weight]` with 0-based
/// vertex ids; dimensions inferred from the maximum id. The format HipMCL
/// calls "labelled triples" after integer relabelling.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Triples<f64>, IoError> {
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    let mut max_id = 0usize;
    for line in BufReader::new(reader).lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut toks = trimmed.split_whitespace();
        let s: usize = parse_tok(toks.next(), trimmed)?;
        let d: usize = parse_tok(toks.next(), trimmed)?;
        let w: f64 = match toks.next() {
            Some(tok) => tok
                .parse()
                .map_err(|e| IoError::Parse(format!("bad weight in '{trimmed}': {e}")))?,
            None => 1.0,
        };
        max_id = max_id.max(s).max(d);
        rows.push(s as Idx);
        cols.push(d as Idx);
        vals.push(w);
    }
    let n = if rows.is_empty() { 0 } else { max_id + 1 };
    Ok(Triples::from_arrays(n, n, rows, cols, vals))
}

/// Convenience: reads a Matrix Market file from a path.
pub fn read_matrix_market_path<P: AsRef<Path>>(p: P) -> Result<Triples<f64>, IoError> {
    read_matrix_market(std::fs::File::open(p)?)
}

/// Writes the clustering as `cluster_id \t member members...` lines, one
/// cluster per line — the same shape as HipMCL's output file.
pub fn write_clusters<W: Write>(w: &mut W, clusters: &[Vec<u32>]) -> Result<(), IoError> {
    for (cid, members) in clusters.iter().enumerate() {
        write!(w, "{cid}")?;
        for v in members {
            write!(w, "\t{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_market_roundtrip() {
        let mut t = Triples::new(3, 3);
        t.push(0, 0, 1.5);
        t.push(2, 1, -2.0);
        let m = Csc::from_triples(&t);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &m).unwrap();
        let back = Csc::from_triples(&read_matrix_market(&buf[..]).unwrap());
        assert_eq!(m, back);
    }

    #[test]
    fn matrix_market_symmetric_expands() {
        let text =
            "%%MatrixMarket matrix coordinate real symmetric\n% comment\n3 3 2\n2 1 5.0\n3 3 1.0\n";
        let t = read_matrix_market(text.as_bytes()).unwrap();
        let m = Csc::from_triples(&t);
        assert_eq!(m.get(1, 0), Some(5.0));
        assert_eq!(m.get(0, 1), Some(5.0));
        assert_eq!(m.get(2, 2), Some(1.0));
        assert_eq!(m.nnz(), 3, "diagonal not duplicated");
    }

    #[test]
    fn matrix_market_pattern_ones() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n";
        let t = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(t.iter().next().unwrap(), (0, 1, 1.0));
    }

    #[test]
    fn matrix_market_rejects_bad_header() {
        let text = "%%MatrixMarket matrix array real general\n2 2 0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_rejects_out_of_range() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn edge_list_reads_weights_and_defaults() {
        let text = "# proteins\n0 1 0.5\n1 2\n";
        let t = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(t.nrows(), 3);
        let entries: Vec<_> = t.iter().collect();
        assert_eq!(entries[0], (0, 1, 0.5));
        assert_eq!(entries[1], (1, 2, 1.0));
    }

    #[test]
    fn edge_list_empty() {
        let t = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(t.nrows(), 0);
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn clusters_output_format() {
        let mut buf = Vec::new();
        write_clusters(&mut buf, &[vec![0, 3], vec![1, 2]]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "0\t0\t3\n1\t1\t2\n");
    }
}
