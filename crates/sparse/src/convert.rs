//! Cross-format conversion helpers and 2D block distribution.
//!
//! The 2D decomposition follows CombBLAS: an `m × n` matrix on a `pr × pc`
//! process grid is split into `pr` row stripes and `pc` column stripes with
//! the balanced block distribution of [`crate::util::even_chunk`]. Block
//! `(i, j)` lives on the process at grid coordinates `(i, j)` and uses
//! *local* indices.

use crate::csc::Csc;
use crate::semiring::Value;
use crate::triples::Triples;
use crate::util::even_chunk;
use crate::Idx;

/// Splits a global matrix into `pr × pc` blocks (row-major block order)
/// with local indices. Inverse of [`gather_2d`].
pub fn split_2d<T: Value>(global: &Triples<T>, pr: usize, pc: usize) -> Vec<Triples<T>> {
    let m = global.nrows();
    let n = global.ncols();
    let row_ranges: Vec<_> = (0..pr).map(|i| even_chunk(m, pr, i)).collect();
    let col_ranges: Vec<_> = (0..pc).map(|j| even_chunk(n, pc, j)).collect();
    let mut blocks: Vec<Triples<T>> = (0..pr * pc)
        .map(|b| Triples::new(row_ranges[b / pc].len(), col_ranges[b % pc].len()))
        .collect();
    for (r, c, v) in global.iter() {
        let (r, c) = (r as usize, c as usize);
        let bi = block_of(m, pr, r);
        let bj = block_of(n, pc, c);
        let lr = (r - row_ranges[bi].start) as Idx;
        let lc = (c - col_ranges[bj].start) as Idx;
        blocks[bi * pc + bj].push(lr, lc, v);
    }
    blocks
}

/// Reassembles a global matrix from `pr × pc` local blocks (row-major block
/// order). Inverse of [`split_2d`].
pub fn gather_2d<T: Value>(
    blocks: &[Triples<T>],
    m: usize,
    n: usize,
    pr: usize,
    pc: usize,
) -> Triples<T> {
    assert_eq!(blocks.len(), pr * pc);
    let nnz = blocks.iter().map(|b| b.nnz()).sum();
    let mut global = Triples::with_capacity(m, n, nnz);
    for bi in 0..pr {
        let rr = even_chunk(m, pr, bi);
        for bj in 0..pc {
            let cr = even_chunk(n, pc, bj);
            let blk = &blocks[bi * pc + bj];
            assert_eq!(blk.nrows(), rr.len(), "block ({bi},{bj}) row dim");
            assert_eq!(blk.ncols(), cr.len(), "block ({bi},{bj}) col dim");
            for (r, c, v) in blk.iter() {
                global.push(
                    (rr.start + r as usize) as Idx,
                    (cr.start + c as usize) as Idx,
                    v,
                );
            }
        }
    }
    global
}

/// Which of the `parts` balanced chunks of `n` items contains item `idx`.
pub fn block_of(n: usize, parts: usize, idx: usize) -> usize {
    debug_assert!(idx < n);
    let base = n / parts;
    let extra = n % parts;
    let big = (base + 1) * extra; // items covered by the first `extra` chunks
    if idx < big {
        idx / (base + 1)
    } else {
        extra + (idx - big) / base.max(1)
    }
}

/// Splits a CSC matrix into `pr × pc` CSC blocks (row-major block order).
/// Convenience wrapper over [`split_2d`].
pub fn split_2d_csc<T: Value>(global: &Csc<T>, pr: usize, pc: usize) -> Vec<Csc<T>> {
    split_2d(&global.to_triples(), pr, pc)
        .iter()
        .map(Csc::from_nodup_triples)
        .collect()
}

/// Reassembles a global CSC matrix from CSC blocks.
pub fn gather_2d_csc<T: Value>(
    blocks: &[Csc<T>],
    m: usize,
    n: usize,
    pr: usize,
    pc: usize,
) -> Csc<T> {
    let t: Vec<Triples<T>> = blocks.iter().map(|b| b.to_triples()).collect();
    Csc::from_nodup_triples(&gather_2d(&t, m, n, pr, pc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_triples(m: usize, n: usize, nnz: usize, seed: u64) -> Triples<f64> {
        // Simple LCG to avoid pulling rand into every unit test.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut t = Triples::new(m, n);
        for _ in 0..nnz {
            t.push(
                (next() % m) as Idx,
                (next() % n) as Idx,
                (next() % 100) as f64 + 1.0,
            );
        }
        t.sum_duplicates();
        t
    }

    #[test]
    fn block_of_matches_even_chunk() {
        for n in [1usize, 7, 10, 33] {
            for parts in [1usize, 2, 3, 5] {
                for idx in 0..n {
                    let b = block_of(n, parts, idx);
                    assert!(
                        even_chunk(n, parts, b).contains(&idx),
                        "n={n} parts={parts} idx={idx}"
                    );
                }
            }
        }
    }

    #[test]
    fn split_gather_roundtrip() {
        let g = random_triples(23, 17, 120, 42);
        for (pr, pc) in [(1, 1), (2, 2), (3, 3), (4, 2)] {
            let blocks = split_2d(&g, pr, pc);
            let mut back = gather_2d(&blocks, 23, 17, pr, pc);
            back.sum_duplicates();
            let mut want = g.clone();
            want.sum_duplicates();
            assert_eq!(back, want, "roundtrip pr={pr} pc={pc}");
        }
    }

    #[test]
    fn split_preserves_total_nnz() {
        let g = random_triples(31, 31, 200, 7);
        let blocks = split_2d(&g, 3, 3);
        let total: usize = blocks.iter().map(|b| b.nnz()).sum();
        assert_eq!(total, g.nnz());
    }

    #[test]
    fn csc_split_gather_roundtrip() {
        let g = Csc::from_triples(&random_triples(16, 16, 60, 3));
        let blocks = split_2d_csc(&g, 2, 2);
        assert_eq!(blocks.len(), 4);
        let back = gather_2d_csc(&blocks, 16, 16, 2, 2);
        assert_eq!(back, g);
    }

    #[test]
    fn single_block_is_identity() {
        let g = random_triples(9, 9, 30, 11);
        let blocks = split_2d(&g, 1, 1);
        assert_eq!(blocks.len(), 1);
        let mut got = blocks[0].clone();
        got.sum_duplicates();
        let mut want = g.clone();
        want.sum_duplicates();
        assert_eq!(got, want);
    }
}
