//! Columnwise kernels of the MCL pipeline: stochastic normalization,
//! inflation (Hadamard power), threshold pruning with selection and
//! recovery, and the chaos convergence statistic.
//!
//! All kernels are column-parallel with rayon — columns are independent,
//! which is exactly why HipMCL parallelizes these steps trivially (§II).

use crate::csc::Csc;
use crate::Idx;
use rayon::prelude::*;

/// Pruning policy applied after every expansion (Algorithm 1, line 4).
///
/// Mirrors MCL's `-P/-S/-R` knobs as used by HipMCL:
/// * entries below `cutoff` are pruned;
/// * if more than `select` entries survive, only the `select` largest are
///   kept (top-k selection, k ≈ 1000 in the paper);
/// * if fewer than `recover_num` survive *and* the surviving mass is below
///   `recover_pct` of the column's pre-prune mass, the largest pruned
///   entries are recovered until either bound is met.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PruneParams {
    /// Absolute cutoff below which entries are pruned (MCL `-P` ≈ 1/10000).
    pub cutoff: f64,
    /// Maximum entries kept per column (MCL `-S`, paper: ~1000).
    pub select: usize,
    /// Column-size floor that triggers recovery (MCL `-R`).
    pub recover_num: usize,
    /// Mass fraction that must survive pruning to skip recovery.
    pub recover_pct: f64,
}

impl Default for PruneParams {
    fn default() -> Self {
        Self {
            cutoff: 1.0 / 10_000.0,
            select: 1100,
            recover_num: 1400,
            recover_pct: 0.9,
        }
    }
}

impl PruneParams {
    /// Parameters scaled for small test graphs (keeps ≤ `k` per column).
    pub fn with_select(k: usize) -> Self {
        Self {
            select: k,
            recover_num: k + k / 4,
            ..Self::default()
        }
    }
}

/// Summary of one pruning pass, used by the driver's instrumentation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PruneStats {
    /// Entries removed by the cutoff.
    pub pruned_by_cutoff: usize,
    /// Entries removed by top-k selection.
    pub pruned_by_select: usize,
    /// Entries put back by recovery.
    pub recovered: usize,
}

/// Scales every column of `m` to sum to one (column stochastic). Columns
/// that are entirely zero are left untouched.
pub fn normalize_columns(m: &mut Csc<f64>) {
    let colptr = m.colptr.clone();
    let vals = &mut m.vals;
    colptr
        .par_windows(2)
        .zip_eq(unsafe { par_col_chunks(vals, &colptr) })
        .for_each(|(_, col)| {
            let s: f64 = col.iter().sum();
            if s > 0.0 {
                let inv = 1.0 / s;
                for v in col {
                    *v *= inv;
                }
            }
        });
}

/// Splits `vals` into per-column mutable chunks according to `colptr`.
///
/// # Safety
/// `colptr` must be a valid monotone pointer array for `vals` (which the
/// `Csc` invariants guarantee); chunks are then disjoint.
unsafe fn par_col_chunks<'a>(
    vals: &'a mut [f64],
    colptr: &'a [usize],
) -> impl rayon::iter::IndexedParallelIterator<Item = &'a mut [f64]> {
    let ptr = vals.as_mut_ptr() as usize;
    colptr.par_windows(2).map(move |w| {
        let (lo, hi) = (w[0], w[1]);
        std::slice::from_raw_parts_mut((ptr as *mut f64).add(lo), hi - lo)
    })
}

/// Raises every entry to `power` and renormalizes columns — the MCL
/// inflation operator Γ_r (Algorithm 1, line 5; paper uses r = 2).
pub fn inflate(m: &mut Csc<f64>, power: f64) {
    let colptr = m.colptr.clone();
    let vals = &mut m.vals;
    colptr
        .par_windows(2)
        .zip_eq(unsafe { par_col_chunks(vals, &colptr) })
        .for_each(|(_, col)| {
            let mut s = 0.0;
            for v in col.iter_mut() {
                *v = v.powf(power);
                s += *v;
            }
            if s > 0.0 {
                let inv = 1.0 / s;
                for v in col {
                    *v *= inv;
                }
            }
        });
}

/// Sum of each column.
pub fn col_sums(m: &Csc<f64>) -> Vec<f64> {
    (0..m.ncols())
        .into_par_iter()
        .map(|j| m.col_vals(j).iter().sum())
        .collect()
}

/// Maximum of each column (0 for empty columns).
pub fn col_maxes(m: &Csc<f64>) -> Vec<f64> {
    (0..m.ncols())
        .into_par_iter()
        .map(|j| m.col_vals(j).iter().copied().fold(0.0f64, f64::max))
        .collect()
}

/// The MCL *chaos* statistic: `max_j (max_i m_ij − Σ_i m_ij²)` over
/// non-empty columns of a column-stochastic matrix. Zero exactly when every
/// column is an indicator vector (fully converged); HipMCL stops when chaos
/// drops below a small epsilon.
pub fn chaos(m: &Csc<f64>) -> f64 {
    (0..m.ncols())
        .into_par_iter()
        .map(|j| {
            let col = m.col_vals(j);
            if col.is_empty() {
                return 0.0;
            }
            let mut mx = 0.0f64;
            let mut ssq = 0.0f64;
            for &v in col {
                mx = mx.max(v);
                ssq += v * v;
            }
            mx - ssq
        })
        .reduce(|| 0.0, f64::max)
}

/// Returns the `k`-th largest value of `vals` (1-indexed: `k = 1` gives the
/// maximum). `k` must satisfy `1 ≤ k ≤ vals.len()`. `O(n)` via quickselect.
pub fn kth_largest(vals: &[f64], k: usize) -> f64 {
    assert!(k >= 1 && k <= vals.len());
    let mut buf: Vec<f64> = vals.to_vec();
    let idx = k - 1;
    let (_, kth, _) = buf.select_nth_unstable_by(idx, |a, b| b.partial_cmp(a).unwrap());
    *kth
}

/// Applies [`PruneParams`] to every column of `m`, returning the pruned
/// matrix and statistics. The input is expected column stochastic; column
/// mass is *not* renormalized here (MCL renormalizes during inflation).
///
/// Per column: cutoff prune → top-`select` selection → recovery. A column
/// whose entries are all below the cutoff keeps its single largest entry
/// (a random-walk column must never become empty).
pub fn prune(m: &Csc<f64>, p: &PruneParams) -> (Csc<f64>, PruneStats) {
    struct ColOut {
        rows: Vec<Idx>,
        vals: Vec<f64>,
        stats: PruneStats,
    }

    let cols: Vec<ColOut> = (0..m.ncols())
        .into_par_iter()
        .map(|j| {
            let rows = m.col_rows(j);
            let vals = m.col_vals(j);
            let mut stats = PruneStats::default();
            if rows.is_empty() {
                return ColOut {
                    rows: Vec::new(),
                    vals: Vec::new(),
                    stats,
                };
            }
            let total_mass: f64 = vals.iter().sum();

            // Cutoff prune.
            let mut kept: Vec<usize> = (0..rows.len()).filter(|&k| vals[k] >= p.cutoff).collect();
            stats.pruned_by_cutoff = rows.len() - kept.len();
            if kept.is_empty() {
                // Keep the single largest entry.
                let best = (0..vals.len())
                    .max_by(|&a, &b| vals[a].partial_cmp(&vals[b]).unwrap())
                    .unwrap();
                kept.push(best);
                stats.pruned_by_cutoff -= 1;
            }

            // Selection: keep top-`select` among survivors.
            if kept.len() > p.select {
                let thresh = {
                    let surviving: Vec<f64> = kept.iter().map(|&k| vals[k]).collect();
                    kth_largest(&surviving, p.select)
                };
                // Keep strictly-greater first, then fill ties up to `select`.
                let mut top: Vec<usize> =
                    kept.iter().copied().filter(|&k| vals[k] > thresh).collect();
                for &k in &kept {
                    if top.len() >= p.select {
                        break;
                    }
                    if vals[k] == thresh {
                        top.push(k);
                    }
                }
                stats.pruned_by_select = kept.len() - top.len();
                kept = top;
                kept.sort_unstable();
            }

            // Recovery: if too much mass was pruned and the column is small.
            let kept_mass: f64 = kept.iter().map(|&k| vals[k]).sum();
            if kept.len() < p.recover_num && kept_mass < p.recover_pct * total_mass {
                let mut pruned: Vec<usize> =
                    (0..rows.len()).filter(|k| !kept.contains(k)).collect();
                pruned.sort_unstable_by(|&a, &b| vals[b].partial_cmp(&vals[a]).unwrap());
                let mut mass = kept_mass;
                for k in pruned {
                    if kept.len() >= p.recover_num || mass >= p.recover_pct * total_mass {
                        break;
                    }
                    kept.push(k);
                    mass += vals[k];
                    stats.recovered += 1;
                }
                kept.sort_unstable();
            }

            ColOut {
                rows: kept.iter().map(|&k| rows[k]).collect(),
                vals: kept.iter().map(|&k| vals[k]).collect(),
                stats,
            }
        })
        .collect();

    let mut colptr = Vec::with_capacity(m.ncols() + 1);
    colptr.push(0usize);
    let nnz: usize = cols.iter().map(|c| c.rows.len()).sum();
    let mut rowidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    let mut stats = PruneStats::default();
    for c in cols {
        rowidx.extend_from_slice(&c.rows);
        vals.extend_from_slice(&c.vals);
        colptr.push(rowidx.len());
        stats.pruned_by_cutoff += c.stats.pruned_by_cutoff;
        stats.pruned_by_select += c.stats.pruned_by_select;
        stats.recovered += c.stats.recovered;
    }
    (
        Csc::from_parts(m.nrows(), m.ncols(), colptr, rowidx, vals),
        stats,
    )
}

/// Makes the nonzero pattern symmetric: `m ∨ mᵀ` with values `max(a, aᵀ)`.
/// MCL inputs are similarity graphs and are symmetrized before clustering.
pub fn symmetrize_max(m: &Csc<f64>) -> Csc<f64> {
    assert_eq!(m.nrows(), m.ncols());
    let t = m.transposed();
    let mut out = crate::triples::Triples::new(m.nrows(), m.ncols());
    for j in 0..m.ncols() {
        let (ra, va) = (m.col_rows(j), m.col_vals(j));
        let (rb, vb) = (t.col_rows(j), t.col_vals(j));
        let (mut a, mut b) = (0usize, 0usize);
        while a < ra.len() || b < rb.len() {
            if b >= rb.len() || (a < ra.len() && ra[a] < rb[b]) {
                out.push(ra[a], j as Idx, va[a]);
                a += 1;
            } else if a >= ra.len() || rb[b] < ra[a] {
                out.push(rb[b], j as Idx, vb[b]);
                b += 1;
            } else {
                out.push(ra[a], j as Idx, va[a].max(vb[b]));
                a += 1;
                b += 1;
            }
        }
    }
    Csc::from_sorted_dedup_triples(&out)
}

/// Adds self-loops of weight `w` to any diagonal position that lacks one.
/// MCL adds self-loops so the random walk is aperiodic.
pub fn add_self_loops(m: &Csc<f64>, w: f64) -> Csc<f64> {
    assert_eq!(m.nrows(), m.ncols());
    let mut t = m.to_triples();
    for j in 0..m.ncols() {
        if m.get(j, j).is_none() {
            t.push(j as Idx, j as Idx, w);
        }
    }
    Csc::from_triples(&t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triples::Triples;

    fn stochastic_sample() -> Csc<f64> {
        let mut t = Triples::new(4, 3);
        t.push(0, 0, 0.5);
        t.push(1, 0, 0.3);
        t.push(2, 0, 0.15);
        t.push(3, 0, 0.05);
        t.push(1, 1, 0.9);
        t.push(2, 1, 0.1);
        t.push(3, 2, 1.0);
        Csc::from_triples(&t)
    }

    #[test]
    fn normalize_makes_columns_sum_to_one() {
        let mut t = Triples::new(3, 2);
        t.push(0, 0, 2.0);
        t.push(1, 0, 6.0);
        t.push(2, 1, 5.0);
        let mut m = Csc::from_triples(&t);
        normalize_columns(&mut m);
        let sums = col_sums(&m);
        assert!((sums[0] - 1.0).abs() < 1e-12);
        assert!((sums[1] - 1.0).abs() < 1e-12);
        assert_eq!(m.get(0, 0), Some(0.25));
    }

    #[test]
    fn normalize_skips_empty_columns() {
        let mut m = Csc::<f64>::zero(3, 3);
        normalize_columns(&mut m);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn inflate_square_sharpens_distribution() {
        let mut m = stochastic_sample();
        inflate(&mut m, 2.0);
        let sums = col_sums(&m);
        for s in sums.iter().take(3) {
            assert!((s - 1.0).abs() < 1e-12, "columns stay stochastic");
        }
        // Column 0 was (0.5,0.3,0.15,0.05): squaring+renorm boosts the max.
        assert!(m.get(0, 0).unwrap() > 0.5);
        assert!(m.get(3, 0).unwrap() < 0.05);
    }

    #[test]
    fn chaos_zero_for_indicator_columns() {
        let m = Csc::<f64>::identity(5);
        assert_eq!(chaos(&m), 0.0);
        let spread = stochastic_sample();
        assert!(chaos(&spread) > 0.0);
    }

    #[test]
    fn kth_largest_basic() {
        let v = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(kth_largest(&v, 1), 0.9);
        assert_eq!(kth_largest(&v, 2), 0.7);
        assert_eq!(kth_largest(&v, 4), 0.1);
    }

    #[test]
    fn prune_cutoff_drops_small_entries() {
        let m = stochastic_sample();
        let p = PruneParams {
            cutoff: 0.2,
            select: 10,
            recover_num: 0,
            recover_pct: 0.0,
        };
        let (out, stats) = prune(&m, &p);
        out.assert_valid();
        assert_eq!(out.get(3, 0), None);
        assert_eq!(out.get(2, 0), None);
        assert_eq!(stats.pruned_by_cutoff, 3); // 0.15, 0.05 in col0; 0.1 in col1
        assert_eq!(out.get(0, 0), Some(0.5));
    }

    #[test]
    fn prune_never_empties_a_column() {
        let m = stochastic_sample();
        let p = PruneParams {
            cutoff: 5.0,
            select: 10,
            recover_num: 0,
            recover_pct: 0.0,
        };
        let (out, _) = prune(&m, &p);
        for j in 0..3 {
            assert_eq!(out.col_nnz(j), 1, "column {j} keeps its max");
        }
        assert_eq!(out.get(0, 0), Some(0.5));
    }

    #[test]
    fn prune_selection_keeps_top_k() {
        let m = stochastic_sample();
        let p = PruneParams {
            cutoff: 0.0,
            select: 2,
            recover_num: 0,
            recover_pct: 0.0,
        };
        let (out, stats) = prune(&m, &p);
        assert_eq!(out.col_nnz(0), 2);
        assert_eq!(out.get(0, 0), Some(0.5));
        assert_eq!(out.get(1, 0), Some(0.3));
        assert_eq!(stats.pruned_by_select, 2);
    }

    #[test]
    fn prune_selection_handles_ties() {
        let mut t = Triples::new(4, 1);
        for i in 0..4 {
            t.push(i, 0, 0.25);
        }
        let m = Csc::from_triples(&t);
        let p = PruneParams {
            cutoff: 0.0,
            select: 2,
            recover_num: 0,
            recover_pct: 0.0,
        };
        let (out, _) = prune(&m, &p);
        assert_eq!(out.col_nnz(0), 2, "exactly k survive a full tie");
    }

    #[test]
    fn prune_recovery_restores_mass() {
        let m = stochastic_sample();
        // Aggressive cutoff kills 0.15/0.05; recovery demands 90% mass back.
        let p = PruneParams {
            cutoff: 0.2,
            select: 10,
            recover_num: 3,
            recover_pct: 0.9,
        };
        let (out, stats) = prune(&m, &p);
        assert!(stats.recovered >= 1);
        // Column 0 kept 0.8 mass after cutoff; recovery adds 0.15 back.
        assert_eq!(out.get(2, 0), Some(0.15));
    }

    #[test]
    fn symmetrize_max_produces_symmetric_pattern() {
        let mut t = Triples::new(3, 3);
        t.push(0, 1, 2.0);
        t.push(1, 0, 5.0);
        t.push(2, 0, 1.0);
        let s = symmetrize_max(&Csc::from_triples(&t));
        s.assert_valid();
        assert_eq!(s.get(0, 1), Some(5.0));
        assert_eq!(s.get(1, 0), Some(5.0));
        assert_eq!(s.get(0, 2), Some(1.0));
        assert_eq!(s.get(2, 0), Some(1.0));
    }

    #[test]
    fn add_self_loops_only_where_missing() {
        let mut t = Triples::new(2, 2);
        t.push(0, 0, 3.0);
        t.push(1, 0, 1.0);
        let m = add_self_loops(&Csc::from_triples(&t), 1.0);
        assert_eq!(m.get(0, 0), Some(3.0), "existing loop untouched");
        assert_eq!(m.get(1, 1), Some(1.0), "missing loop added");
    }

    #[test]
    fn col_maxes_and_sums() {
        let m = stochastic_sample();
        let maxes = col_maxes(&m);
        assert_eq!(maxes, vec![0.5, 0.9, 1.0]);
        let sums = col_sums(&m);
        assert!((sums[0] - 1.0).abs() < 1e-12);
    }
}
