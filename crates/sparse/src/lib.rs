//! Sparse-matrix substrate for `hipmcl-rs`.
//!
//! This crate provides the storage formats and elementwise/columnwise
//! operations that the Markov Cluster (MCL) pipeline and the distributed
//! SUMMA layers are built on. It mirrors the roles CombBLAS plays for the
//! original HipMCL:
//!
//! * [`Triples`] — coordinate (COO) form, the interchange format used for
//!   graph construction, I/O and the merge stages of Sparse SUMMA.
//! * [`Csc`] — compressed sparse column, the workhorse format. MCL is a
//!   column-stochastic algorithm, so columnwise access dominates.
//! * [`Csr`] — compressed sparse row, used by the GPU SpGEMM kernels
//!   (bhsparse/nsparse/rmerge2 analogues are row-parallel).
//! * [`Dcsc`] — doubly compressed sparse column for hypersparse submatrices,
//!   as used by 2D-distributed blocks (Buluç & Gilbert, IPDPS'08). When a
//!   matrix is split over `√P × √P` processes, each block has on average
//!   `nnz/P` nonzeros over `n/√P` columns; most columns are empty and plain
//!   CSC wastes `O(n/√P)` pointer space. DCSC compresses the column pointers.
//!
//! Columnwise MCL kernels (normalization, pruning, top-k selection,
//! inflation) live in [`colops`]; connected components for the final
//! cluster extraction live in [`components`]; Matrix Market I/O in [`io`].
//!
//! Indices are `u32` ([`Idx`]) — sufficient for the scaled-down networks
//! this reproduction runs (the paper's largest, metaclust50 at 383 M
//! vertices, would also fit). Pointer arrays are `usize`.

pub mod colops;
pub mod components;
pub mod convert;
pub mod csc;
pub mod csr;
pub mod dcsc;
pub mod io;
pub mod labels;
pub mod semiring;
pub mod triples;
pub mod util;
pub mod wire;

pub use csc::Csc;
pub use csr::Csr;
pub use dcsc::Dcsc;
pub use semiring::{Boolean, MaxMin, MinPlus, PlusTimes, Semiring, Value};
pub use triples::Triples;
pub use wire::{WireDecode, WireEncode, WireError, WireReader};

/// Row/column index type used by all sparse formats.
pub type Idx = u32;

#[cfg(test)]
mod proptests;
