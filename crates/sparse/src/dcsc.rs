//! Doubly compressed sparse column (DCSC) storage for hypersparse matrices.
//!
//! When a matrix is block-distributed over a `√P × √P` process grid, each
//! local block holds `nnz/P` nonzeros across `n/√P` columns. For large `P`
//! most columns are empty (`nnz < ncols`, the *hypersparse* regime) and the
//! CSC column-pointer array alone would dwarf the data. DCSC (Buluç &
//! Gilbert, IPDPS 2008) stores only the non-empty columns: `jc` holds their
//! column indices and `cp` their pointer ranges into `ir`/`num`.
//!
//! HipMCL stores distributed blocks in DCSC; the GPU path decompresses to
//! CSC (`O(nzc)` — cheap) and applies the §III-B transpose trick instead of
//! a full CSR conversion. [`Dcsc::to_csc`] / [`Dcsc::from_csc`] implement
//! exactly that decompression/compression.

use crate::csc::Csc;
use crate::semiring::Value;
use crate::Idx;

/// Sparse matrix in doubly compressed sparse column form.
///
/// Invariants:
/// * `jc` strictly increasing, entries `< ncols` — the non-empty columns.
/// * `cp.len() == jc.len() + 1`, strictly increasing (every listed column
///   is genuinely non-empty), `cp[last] == nnz`.
/// * Row indices sorted and unique within each column, `< nrows`.
#[derive(Clone, Debug, PartialEq)]
pub struct Dcsc<T> {
    nrows: usize,
    ncols: usize,
    /// Column indices of the non-empty columns, strictly increasing.
    pub jc: Vec<Idx>,
    /// `cp[k]..cp[k+1]` is the range of column `jc[k]` in `ir`/`num`.
    pub cp: Vec<usize>,
    /// Row indices, sorted within each column.
    pub ir: Vec<Idx>,
    /// Values.
    pub num: Vec<T>,
}

impl<T: Value> Dcsc<T> {
    /// Empty matrix of the given dimensions.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            jc: Vec::new(),
            cp: vec![0],
            ir: Vec::new(),
            num: Vec::new(),
        }
    }

    /// Builds from raw parts, validating invariants.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        jc: Vec<Idx>,
        cp: Vec<usize>,
        ir: Vec<Idx>,
        num: Vec<T>,
    ) -> Self {
        Self::try_from_parts(nrows, ncols, jc, cp, ir, num)
            .unwrap_or_else(|e| panic!("invalid DCSC: {e}"))
    }

    /// Fallible [`Dcsc::from_parts`]: the constructor for *untrusted*
    /// input (wire decoding), returning the violated invariant instead
    /// of panicking.
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        jc: Vec<Idx>,
        cp: Vec<usize>,
        ir: Vec<Idx>,
        num: Vec<T>,
    ) -> Result<Self, &'static str> {
        let m = Self {
            nrows,
            ncols,
            jc,
            cp,
            ir,
            num,
        };
        m.validate()?;
        Ok(m)
    }

    /// Compresses a CSC matrix by dropping its empty columns' pointers.
    pub fn from_csc(csc: &Csc<T>) -> Self {
        let mut jc = Vec::new();
        let mut cp = vec![0usize];
        for j in 0..csc.ncols() {
            if csc.col_nnz(j) > 0 {
                jc.push(j as Idx);
                cp.push(csc.colptr[j + 1]);
            }
        }
        Self {
            nrows: csc.nrows(),
            ncols: csc.ncols(),
            jc,
            cp,
            ir: csc.rowidx.clone(),
            num: csc.vals.clone(),
        }
    }

    /// Decompresses the column pointers back to a full CSC pointer array.
    /// `O(ncols + nzc)`; the index and value arrays are shared semantics
    /// (copied here — they are identical byte-for-byte).
    pub fn to_csc(&self) -> Csc<T> {
        let mut colptr = vec![0usize; self.ncols + 1];
        for (k, &j) in self.jc.iter().enumerate() {
            colptr[j as usize + 1] = self.cp[k + 1] - self.cp[k];
        }
        for j in 0..self.ncols {
            colptr[j + 1] += colptr[j];
        }
        Csc::from_parts(
            self.nrows,
            self.ncols,
            colptr,
            self.ir.clone(),
            self.num.clone(),
        )
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (logical, including empty ones).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.num.len()
    }

    /// Number of non-empty columns (`nzc` in the DCSC literature).
    pub fn nzc(&self) -> usize {
        self.jc.len()
    }

    /// `true` if the matrix is hypersparse (`nnz < ncols`), the regime DCSC
    /// is designed for.
    pub fn is_hypersparse(&self) -> bool {
        self.nnz() < self.ncols
    }

    /// Iterates non-empty columns as `(col, rows, vals)`.
    pub fn iter_cols(&self) -> impl Iterator<Item = (Idx, &[Idx], &[T])> + '_ {
        self.jc.iter().enumerate().map(move |(k, &j)| {
            let range = self.cp[k]..self.cp[k + 1];
            (j, &self.ir[range.clone()], &self.num[range])
        })
    }

    /// Extracts the columns listed in `cols` (strictly increasing old
    /// indices) with columns relabelled `0..cols.len()` — the DCSC
    /// counterpart of [`Csc::select_cols`]. Non-empty selected columns are
    /// found by merging `cols` against `jc`; `O(nzc + cols + nnz of the
    /// selection)`, never touching the dropped columns' data.
    pub fn select_cols(&self, cols: &[usize]) -> Self {
        debug_assert!(crate::util::is_strictly_increasing(cols));
        if let Some(&last) = cols.last() {
            assert!(last < self.ncols, "selected column {last} out of range");
        }
        let mut jc = Vec::new();
        let mut cp = vec![0usize];
        let mut ir = Vec::new();
        let mut num = Vec::new();
        let mut k = 0usize; // cursor into self.jc (both lists increasing)
        for (new, &old) in cols.iter().enumerate() {
            while k < self.jc.len() && (self.jc[k] as usize) < old {
                k += 1;
            }
            if k < self.jc.len() && self.jc[k] as usize == old {
                let range = self.cp[k]..self.cp[k + 1];
                jc.push(new as Idx);
                ir.extend_from_slice(&self.ir[range.clone()]);
                num.extend_from_slice(&self.num[range]);
                cp.push(ir.len());
            }
        }
        Self {
            nrows: self.nrows,
            ncols: cols.len(),
            jc,
            cp,
            ir,
            num,
        }
    }

    /// Approximate heap footprint in bytes. For a hypersparse block this is
    /// `O(nnz + nzc)` versus CSC's `O(nnz + ncols)`.
    pub fn bytes(&self) -> usize {
        self.jc.len() * std::mem::size_of::<Idx>()
            + self.cp.len() * std::mem::size_of::<usize>()
            + self.ir.len() * std::mem::size_of::<Idx>()
            + self.num.len() * std::mem::size_of::<T>()
    }

    /// Checks structural invariants; panics on violation.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("invalid DCSC: {e}");
        }
    }

    /// Checks the structural invariants without panicking — total over
    /// arbitrary field contents (a corrupt or hostile frame): every
    /// access is length-guarded first, so validation itself cannot index
    /// out of bounds. A matrix that passes here is also safe to feed to
    /// [`Dcsc::to_csc`], whose pointer arithmetic relies on exactly
    /// these invariants.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self
            .jc
            .len()
            .checked_add(1)
            .is_none_or(|n| self.cp.len() != n)
        {
            return Err("cp length != jc length + 1");
        }
        if self.cp[0] != 0 {
            return Err("cp[0] != 0");
        }
        if self.ir.len() != self.num.len() {
            return Err("ir/num length mismatch");
        }
        if *self.cp.last().expect("length checked") != self.num.len() {
            return Err("cp end != nnz");
        }
        if !crate::util::is_strictly_increasing(&self.jc) {
            return Err("jc not strictly increasing");
        }
        if let Some(&last) = self.jc.last() {
            if last as usize >= self.ncols {
                return Err("jc column index out of bounds");
            }
        }
        if self.cp.windows(2).any(|w| w[0] >= w[1]) {
            return Err("cp not strictly increasing (a listed column is empty)");
        }
        // cp[0] == 0, strictly increasing, end == nnz ⇒ every listed
        // column's range is in bounds of ir/num from here on.
        for k in 0..self.jc.len() {
            let rows = &self.ir[self.cp[k]..self.cp[k + 1]];
            if !crate::util::is_strictly_increasing(rows) {
                return Err("rows not sorted+unique within a column");
            }
            if *rows.last().expect("listed columns are non-empty") as usize >= self.nrows {
                return Err("row index out of bounds");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triples::Triples;

    fn hypersparse_sample() -> Csc<f64> {
        // 100 x 100 with 5 nonzeros in 3 columns: genuinely hypersparse.
        let mut t = Triples::new(100, 100);
        t.push(3, 7, 1.0);
        t.push(50, 7, 2.0);
        t.push(0, 20, 3.0);
        t.push(99, 99, 4.0);
        t.push(98, 99, 5.0);
        Csc::from_triples(&t)
    }

    #[test]
    fn roundtrip_csc() {
        let csc = hypersparse_sample();
        let d = Dcsc::from_csc(&csc);
        d.assert_valid();
        assert_eq!(d.nzc(), 3);
        assert_eq!(d.nnz(), 5);
        assert!(d.is_hypersparse());
        assert_eq!(d.to_csc(), csc);
    }

    #[test]
    fn compression_saves_pointer_space() {
        let csc = hypersparse_sample();
        let d = Dcsc::from_csc(&csc);
        assert!(
            d.bytes() < csc.bytes(),
            "DCSC must be smaller when hypersparse"
        );
    }

    #[test]
    fn iter_cols_yields_nonempty_columns() {
        let d = Dcsc::from_csc(&hypersparse_sample());
        let cols: Vec<Idx> = d.iter_cols().map(|(j, _, _)| j).collect();
        assert_eq!(cols, vec![7, 20, 99]);
        let (j, rows, vals) = d.iter_cols().next().unwrap();
        assert_eq!(j, 7);
        assert_eq!(rows, &[3, 50]);
        assert_eq!(vals, &[1.0, 2.0]);
    }

    #[test]
    fn select_cols_agrees_with_csc_selection() {
        let csc = hypersparse_sample();
        let d = Dcsc::from_csc(&csc);
        // Mix of non-empty (7, 99), empty (0, 42) and dropped columns.
        let keep = [0usize, 7, 42, 99];
        let picked = d.select_cols(&keep);
        picked.assert_valid();
        assert_eq!(picked.ncols(), keep.len());
        assert_eq!(picked.to_csc(), csc.select_cols(&keep));
        // Only the genuinely non-empty survivors are listed.
        assert_eq!(picked.jc, vec![1, 3]);
        // Empty selection degenerates to a zero-width matrix.
        let none = d.select_cols(&[]);
        none.assert_valid();
        assert_eq!(none.nzc(), 0);
        assert_eq!(none.ncols(), 0);
    }

    #[test]
    fn zero_matrix_valid() {
        let d = Dcsc::<f64>::zero(10, 10);
        d.assert_valid();
        assert_eq!(d.nzc(), 0);
        assert_eq!(d.to_csc(), Csc::zero(10, 10));
    }

    #[test]
    fn dense_matrix_roundtrips_too() {
        let csc = Csc::<f64>::identity(8);
        let d = Dcsc::from_csc(&csc);
        d.assert_valid();
        assert!(!d.is_hypersparse());
        assert_eq!(d.to_csc(), csc);
    }
}
