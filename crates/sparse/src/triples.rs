//! Coordinate (COO) sparse matrix storage.
//!
//! `Triples` is the interchange format: graph generators emit it, Matrix
//! Market I/O reads into it, and the SUMMA merge stages treat intermediate
//! products as lists of triples. Stored struct-of-arrays for cache-friendly
//! bulk operations.

use crate::semiring::{PlusTimes, Semiring, Value};
use crate::util::exclusive_prefix_sum;
use crate::Idx;

/// A sparse matrix in coordinate form: parallel arrays of `(row, col, val)`.
///
/// Duplicates are allowed; [`Triples::sum_duplicates_in`] collapses them
/// with the given semiring's addition (the [`Triples::sum_duplicates`]
/// shorthand picks plus-times). Most consumers convert to [`crate::Csc`]
/// via [`crate::Csc::from_triples`], which also tolerates duplicates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Triples<T> {
    nrows: usize,
    ncols: usize,
    /// Row index of each nonzero.
    pub rows: Vec<Idx>,
    /// Column index of each nonzero.
    pub cols: Vec<Idx>,
    /// Value of each nonzero.
    pub vals: Vec<T>,
}

impl<T: Value> Triples<T> {
    /// Creates an empty matrix of the given dimensions.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty matrix with capacity reserved for `cap` nonzeros.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Builds from parallel arrays. Panics if lengths differ or any index
    /// is out of bounds — in every build profile: these arrays may have
    /// crossed a process boundary, and a release build silently accepting
    /// an out-of-bounds index defers the failure to whatever kernel
    /// indexes with it later.
    pub fn from_arrays(
        nrows: usize,
        ncols: usize,
        rows: Vec<Idx>,
        cols: Vec<Idx>,
        vals: Vec<T>,
    ) -> Self {
        Self::try_from_arrays(nrows, ncols, rows, cols, vals)
            .unwrap_or_else(|e| panic!("invalid triples: {e}"))
    }

    /// Fallible [`Triples::from_arrays`]: the constructor for *untrusted*
    /// input (wire decoding), returning the violated invariant instead of
    /// panicking.
    pub fn try_from_arrays(
        nrows: usize,
        ncols: usize,
        rows: Vec<Idx>,
        cols: Vec<Idx>,
        vals: Vec<T>,
    ) -> Result<Self, &'static str> {
        let m = Self {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        };
        m.validate()?;
        Ok(m)
    }

    /// Checks the structural invariants without panicking.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.rows.len() != self.cols.len() || self.rows.len() != self.vals.len() {
            return Err("rows/cols/vals length mismatch");
        }
        if !self.rows.iter().all(|&r| (r as usize) < self.nrows) {
            return Err("row index out of bounds");
        }
        if !self.cols.iter().all(|&c| (c as usize) < self.ncols) {
            return Err("column index out of bounds");
        }
        Ok(())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Appends one entry.
    #[inline]
    pub fn push(&mut self, row: Idx, col: Idx, val: T) {
        debug_assert!((row as usize) < self.nrows && (col as usize) < self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Iterates over `(row, col, val)`.
    pub fn iter(&self) -> impl Iterator<Item = (Idx, Idx, T)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Sorts entries into column-major order (column, then row) with a
    /// two-pass counting sort — `O(nnz + nrows + ncols)`, stable.
    pub fn sort_column_major(&mut self) {
        if self.nnz() <= 1 {
            return;
        }
        // Pass 1: stable counting sort by row.
        let by_row = counting_sort_perm(&self.rows, self.nrows);
        apply_perm(&by_row, &mut self.rows, &mut self.cols, &mut self.vals);
        // Pass 2: stable counting sort by column; rows stay sorted per column.
        let by_col = counting_sort_perm(&self.cols, self.ncols);
        apply_perm(&by_col, &mut self.rows, &mut self.cols, &mut self.vals);
    }

    /// Collapses duplicate `(row, col)` entries with the semiring's
    /// addition and drops entries that accumulate to the annihilator.
    /// Leaves the matrix sorted column-major.
    pub fn sum_duplicates_in<S: Semiring<Elem = T>>(&mut self, _s: S) {
        self.sort_column_major();
        let n = self.nnz();
        if n == 0 {
            return;
        }
        let mut w = 0usize; // write cursor
        for r in 0..n {
            if w > 0 && self.rows[w - 1] == self.rows[r] && self.cols[w - 1] == self.cols[r] {
                self.vals[w - 1] = S::add(self.vals[w - 1], self.vals[r]);
            } else {
                self.rows[w] = self.rows[r];
                self.cols[w] = self.cols[r];
                self.vals[w] = self.vals[r];
                w += 1;
            }
        }
        // Drop explicit annihilators produced by cancellation.
        let mut k = 0usize;
        for i in 0..w {
            if !S::is_annihilator(self.vals[i]) {
                self.rows[k] = self.rows[i];
                self.cols[k] = self.cols[i];
                self.vals[k] = self.vals[i];
                k += 1;
            }
        }
        self.rows.truncate(k);
        self.cols.truncate(k);
        self.vals.truncate(k);
    }

    /// Returns the transpose (rows and columns swapped).
    pub fn transposed(&self) -> Self {
        Self {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        }
    }

    /// Extracts the submatrix of columns in `col_range`, relabelling columns
    /// to start at zero. Used by phased SUMMA to split the B operand.
    pub fn column_slice(&self, col_range: std::ops::Range<usize>) -> Self {
        let mut out = Triples::new(self.nrows, col_range.len());
        for (r, c, v) in self.iter() {
            let c = c as usize;
            if col_range.contains(&c) {
                out.push(r, (c - col_range.start) as Idx, v);
            }
        }
        out
    }

    /// Approximate heap footprint in bytes of the stored entries.
    pub fn bytes(&self) -> usize {
        self.nnz() * (2 * std::mem::size_of::<Idx>() + std::mem::size_of::<T>())
    }
}

impl<T: Value> Triples<T>
where
    PlusTimes<T>: Semiring<Elem = T>,
{
    /// Shorthand for [`Triples::sum_duplicates_in`] with the numeric
    /// plus-times semiring — the MCL default.
    pub fn sum_duplicates(&mut self) {
        self.sum_duplicates_in(PlusTimes::new());
    }
}

/// Stable counting-sort permutation of `keys` with key domain `[0, domain)`.
fn counting_sort_perm(keys: &[Idx], domain: usize) -> Vec<u32> {
    let mut counts = vec![0usize; domain + 1];
    for &k in keys {
        counts[k as usize] += 1;
    }
    exclusive_prefix_sum(&mut counts);
    let mut perm = vec![0u32; keys.len()];
    for (i, &k) in keys.iter().enumerate() {
        perm[counts[k as usize]] = i as u32;
        counts[k as usize] += 1;
    }
    perm
}

/// Applies permutation `perm` (source indices) to the three parallel arrays.
fn apply_perm<T: Copy>(perm: &[u32], rows: &mut Vec<Idx>, cols: &mut Vec<Idx>, vals: &mut Vec<T>) {
    let r2: Vec<Idx> = perm.iter().map(|&i| rows[i as usize]).collect();
    let c2: Vec<Idx> = perm.iter().map(|&i| cols[i as usize]).collect();
    let v2: Vec<T> = perm.iter().map(|&i| vals[i as usize]).collect();
    *rows = r2;
    *cols = c2;
    *vals = v2;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Triples<f64> {
        let mut t = Triples::new(3, 4);
        t.push(2, 1, 1.0);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        t.push(0, 3, 4.0);
        t.push(2, 0, 5.0);
        t
    }

    #[test]
    fn push_and_iter() {
        let t = sample();
        assert_eq!(t.nnz(), 5);
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 4);
        let collected: Vec<_> = t.iter().collect();
        assert_eq!(collected[0], (2, 1, 1.0));
    }

    #[test]
    fn sort_column_major_orders_by_col_then_row() {
        let mut t = sample();
        t.sort_column_major();
        let got: Vec<_> = t.iter().map(|(r, c, _)| (c, r)).collect();
        let mut want = got.clone();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(t.iter().next().unwrap(), (0, 0, 2.0));
    }

    #[test]
    fn sum_duplicates_collapses_and_drops_zero() {
        let mut t = Triples::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 0, 2.0);
        t.push(1, 1, 5.0);
        t.push(1, 1, -5.0);
        t.sum_duplicates();
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.iter().next().unwrap(), (0, 0, 3.0));
    }

    #[test]
    fn sum_duplicates_in_min_plus_takes_minimum() {
        use crate::semiring::MinPlus;
        let mut t = Triples::new(2, 2);
        t.push(0, 0, 3.0);
        t.push(0, 0, 1.5);
        t.push(1, 0, f64::INFINITY); // explicit annihilator is dropped
        t.sum_duplicates_in(MinPlus);
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.iter().next().unwrap(), (0, 0, 1.5));
    }

    #[test]
    fn sum_duplicates_in_boolean_ors() {
        use crate::semiring::Boolean;
        let mut t = Triples::new(2, 2);
        t.push(0, 1, true);
        t.push(0, 1, false);
        t.push(1, 1, false);
        t.sum_duplicates_in(Boolean);
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.iter().next().unwrap(), (0, 1, true));
    }

    #[test]
    fn sum_duplicates_empty() {
        let mut t: Triples<f64> = Triples::new(4, 4);
        t.sum_duplicates();
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn transpose_swaps_dims() {
        let t = sample().transposed();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        assert!(t.iter().any(|(r, c, v)| (r, c, v) == (1, 2, 1.0)));
    }

    #[test]
    fn column_slice_relabels() {
        let t = sample();
        let s = t.column_slice(1..4);
        assert_eq!(s.ncols(), 3);
        assert_eq!(s.nrows(), 3);
        // (0,3,4.0) becomes (0,2,4.0)
        assert!(s.iter().any(|(r, c, v)| (r, c, v) == (0, 2, 4.0)));
        // column 0 entries are gone
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn counting_sort_perm_is_stable() {
        let keys = vec![1u32, 0, 1, 0];
        let perm = counting_sort_perm(&keys, 2);
        assert_eq!(perm, vec![1, 3, 0, 2]);
    }
}
