//! Compressed sparse column (CSC) storage.
//!
//! CSC is the primary compute format of the MCL pipeline: the matrix is
//! column stochastic and every kernel (normalization, pruning, selection,
//! inflation, column-by-column SpGEMM) walks columns. Rows within a column
//! are kept sorted by row index — several kernels (heap SpGEMM, two-way
//! merges) rely on that invariant, and [`Csc::assert_valid`] checks it.

use crate::semiring::{PlusTimes, Semiring, Value};
use crate::triples::Triples;
use crate::util::is_strictly_increasing;
use crate::Idx;

/// Sparse matrix in compressed sparse column form.
///
/// Invariants (checked by [`Csc::assert_valid`], enforced by constructors):
/// * `colptr.len() == ncols + 1`, `colptr[0] == 0`, monotone non-decreasing,
///   `colptr[ncols] == nnz`.
/// * Within each column, row indices are strictly increasing (no duplicates).
/// * All row indices `< nrows`.
#[derive(Clone, Debug, PartialEq)]
pub struct Csc<T> {
    nrows: usize,
    ncols: usize,
    /// `colptr[j]..colptr[j+1]` is the index range of column `j`.
    pub colptr: Vec<usize>,
    /// Row index of each nonzero, sorted within each column.
    pub rowidx: Vec<Idx>,
    /// Value of each nonzero.
    pub vals: Vec<T>,
}

impl<T: Value> Csc<T> {
    /// Creates an empty `nrows × ncols` matrix.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            colptr: vec![0; ncols + 1],
            rowidx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Same structure, values mapped through `f` — how a matrix moves
    /// between semiring element types (e.g. weights → reachability bits).
    /// Stored entries are preserved even if `f` maps them to the target
    /// semiring's annihilator; follow with a merge or rebuild to drop
    /// them.
    pub fn map_values<U: Value>(&self, f: impl Fn(T) -> U) -> Csc<U> {
        Csc {
            nrows: self.nrows,
            ncols: self.ncols,
            colptr: self.colptr.clone(),
            rowidx: self.rowidx.clone(),
            vals: self.vals.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Identity matrix of size `n` in the given semiring: diagonal of
    /// `S::ONE`, everything else absent (the annihilator).
    pub fn identity_in<S: Semiring<Elem = T>>(_s: S, n: usize) -> Self {
        Self {
            nrows: n,
            ncols: n,
            colptr: (0..=n).collect(),
            rowidx: (0..n as Idx).collect(),
            vals: vec![S::ONE; n],
        }
    }

    /// Builds from raw parts, validating invariants.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<Idx>,
        vals: Vec<T>,
    ) -> Self {
        Self::try_from_parts(nrows, ncols, colptr, rowidx, vals)
            .unwrap_or_else(|e| panic!("invalid CSC: {e}"))
    }

    /// Fallible [`Csc::from_parts`]: the constructor for *untrusted*
    /// input (wire decoding), returning the violated invariant instead
    /// of panicking.
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<Idx>,
        vals: Vec<T>,
    ) -> Result<Self, &'static str> {
        let m = Self {
            nrows,
            ncols,
            colptr,
            rowidx,
            vals,
        };
        m.validate()?;
        Ok(m)
    }

    /// Converts from COO, collapsing duplicate entries with the given
    /// semiring's addition. `O(nnz + nrows + ncols)`.
    pub fn from_triples_in<S: Semiring<Elem = T>>(s: S, t: &Triples<T>) -> Self {
        let mut t = t.clone();
        t.sum_duplicates_in(s);
        Self::from_sorted_dedup_triples(&t)
    }

    /// Converts from COO known to hold no duplicate coordinates (e.g.
    /// re-blocked entries of an already-valid matrix). Sorts column-major
    /// and builds structurally — no semiring needed since nothing can
    /// collapse.
    pub fn from_nodup_triples(t: &Triples<T>) -> Self {
        let mut t = t.clone();
        t.sort_column_major();
        Self::from_sorted_dedup_triples(&t)
    }

    /// Converts from COO that is already column-major sorted with no
    /// duplicate coordinates (e.g. the output of
    /// [`Triples::sum_duplicates_in`]). Avoids the extra sort.
    pub fn from_sorted_dedup_triples(t: &Triples<T>) -> Self {
        let mut colptr = vec![0usize; t.ncols() + 1];
        for &c in &t.cols {
            colptr[c as usize + 1] += 1;
        }
        for j in 0..t.ncols() {
            colptr[j + 1] += colptr[j];
        }
        let m = Self {
            nrows: t.nrows(),
            ncols: t.ncols(),
            colptr,
            rowidx: t.rows.clone(),
            vals: t.vals.clone(),
        };
        m.assert_valid();
        m
    }

    /// Converts to COO (column-major order).
    pub fn to_triples(&self) -> Triples<T> {
        let mut t = Triples::with_capacity(self.nrows, self.ncols, self.nnz());
        for j in 0..self.ncols {
            for k in self.colptr[j]..self.colptr[j + 1] {
                t.push(self.rowidx[k], j as Idx, self.vals[k]);
            }
        }
        t
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of nonzeros in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.colptr[j + 1] - self.colptr[j]
    }

    /// Row indices of column `j` (sorted).
    #[inline]
    pub fn col_rows(&self, j: usize) -> &[Idx] {
        &self.rowidx[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Values of column `j`, parallel to [`Csc::col_rows`].
    #[inline]
    pub fn col_vals(&self, j: usize) -> &[T] {
        &self.vals[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Mutable values of column `j`.
    #[inline]
    pub fn col_vals_mut(&mut self, j: usize) -> &mut [T] {
        &mut self.vals[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Iterates `(row, col, val)` in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Idx, Idx, T)> + '_ {
        (0..self.ncols).flat_map(move |j| {
            self.col_rows(j)
                .iter()
                .zip(self.col_vals(j))
                .map(move |(&r, &v)| (r, j as Idx, v))
        })
    }

    /// Value at `(i, j)` if stored. Binary search within the column.
    pub fn get(&self, i: usize, j: usize) -> Option<T> {
        let rows = self.col_rows(j);
        rows.binary_search(&(i as Idx))
            .ok()
            .map(|k| self.col_vals(j)[k])
    }

    /// Transpose via counting sort on row indices — `O(nnz + nrows)`.
    /// The result's columns (original rows) come out sorted.
    pub fn transposed(&self) -> Self {
        let mut colptr = vec![0usize; self.nrows + 1];
        for &r in &self.rowidx {
            colptr[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            colptr[i + 1] += colptr[i];
        }
        let mut cursor = colptr.clone();
        let mut rowidx = vec![0 as Idx; self.nnz()];
        let mut vals = vec![T::default(); self.nnz()];
        for j in 0..self.ncols {
            for k in self.colptr[j]..self.colptr[j + 1] {
                let r = self.rowidx[k] as usize;
                let dst = cursor[r];
                cursor[r] += 1;
                rowidx[dst] = j as Idx;
                vals[dst] = self.vals[k];
            }
        }
        Self {
            nrows: self.ncols,
            ncols: self.nrows,
            colptr,
            rowidx,
            vals,
        }
    }

    /// Extracts columns `range` as a new matrix with columns relabelled from
    /// zero. `O(cols + nnz of slice)`. Used by phased SUMMA to take `b`
    /// columns of the B operand at a time.
    pub fn column_slice(&self, range: std::ops::Range<usize>) -> Self {
        let lo = self.colptr[range.start];
        let hi = self.colptr[range.end];
        let colptr = self.colptr[range.start..=range.end]
            .iter()
            .map(|&p| p - lo)
            .collect();
        Self {
            nrows: self.nrows,
            ncols: range.len(),
            colptr,
            rowidx: self.rowidx[lo..hi].to_vec(),
            vals: self.vals[lo..hi].to_vec(),
        }
    }

    /// Horizontal concatenation of column blocks (inverse of
    /// [`Csc::column_slice`] partitioning). All blocks must share `nrows`.
    pub fn hcat(blocks: &[Self]) -> Self {
        assert!(!blocks.is_empty());
        let nrows = blocks[0].nrows;
        assert!(blocks.iter().all(|b| b.nrows == nrows));
        let ncols: usize = blocks.iter().map(|b| b.ncols).sum();
        let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
        let mut colptr = Vec::with_capacity(ncols + 1);
        colptr.push(0usize);
        let mut rowidx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        for b in blocks {
            let base = *colptr.last().unwrap();
            colptr.extend(b.colptr[1..].iter().map(|&p| base + p));
            rowidx.extend_from_slice(&b.rowidx);
            vals.extend_from_slice(&b.vals);
        }
        Self {
            nrows,
            ncols,
            colptr,
            rowidx,
            vals,
        }
    }

    /// Extracts the columns listed in `cols` (strictly increasing old
    /// indices) as a new matrix with columns relabelled `0..cols.len()`.
    /// `cols` *is* the new→old column index map; the old→new inverse is
    /// [`crate::util::inverse_selection`]. Generalizes
    /// [`Csc::column_slice`] to non-contiguous selections — the active-set
    /// operand extraction of the distributed MCL driver. `O(cols + nnz of
    /// the selection)`.
    pub fn select_cols(&self, cols: &[usize]) -> Self {
        debug_assert!(crate::util::is_strictly_increasing(cols));
        if let Some(&last) = cols.last() {
            assert!(last < self.ncols, "selected column {last} out of range");
        }
        let mut colptr = Vec::with_capacity(cols.len() + 1);
        colptr.push(0usize);
        let nnz: usize = cols.iter().map(|&j| self.col_nnz(j)).sum();
        let mut rowidx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        for &j in cols {
            rowidx.extend_from_slice(self.col_rows(j));
            vals.extend_from_slice(self.col_vals(j));
            colptr.push(rowidx.len());
        }
        Self {
            nrows: self.nrows,
            ncols: cols.len(),
            colptr,
            rowidx,
            vals,
        }
    }

    /// Removes stored entries equal to the semiring's annihilator.
    pub fn drop_zeros_in<S: Semiring<Elem = T>>(&mut self, _s: S) {
        let mut w = 0usize;
        let mut new_colptr = vec![0usize; self.ncols + 1];
        for j in 0..self.ncols {
            for k in self.colptr[j]..self.colptr[j + 1] {
                if !S::is_annihilator(self.vals[k]) {
                    self.rowidx[w] = self.rowidx[k];
                    self.vals[w] = self.vals[k];
                    w += 1;
                }
            }
            new_colptr[j + 1] = w;
        }
        self.rowidx.truncate(w);
        self.vals.truncate(w);
        self.colptr = new_colptr;
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.colptr.len() * std::mem::size_of::<usize>()
            + self.rowidx.len() * std::mem::size_of::<Idx>()
            + self.vals.len() * std::mem::size_of::<T>()
    }

    /// Checks the structural invariants; panics with a description on
    /// violation. Cheap enough to run in tests and after every kernel.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("invalid CSC: {e}");
        }
    }

    /// Checks the structural invariants without panicking — total over
    /// arbitrary field contents, including dims and pointer arrays that
    /// never came from a constructor (a corrupt or hostile frame). Every
    /// access is length-guarded, so this cannot itself index out of
    /// bounds or overflow.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self
            .ncols
            .checked_add(1)
            .is_none_or(|n| self.colptr.len() != n)
        {
            return Err("colptr length != ncols + 1");
        }
        if self.colptr[0] != 0 {
            return Err("colptr[0] != 0");
        }
        if self.rowidx.len() != self.vals.len() {
            return Err("rowidx/vals length mismatch");
        }
        if *self.colptr.last().expect("length checked") != self.rowidx.len() {
            return Err("colptr end != nnz");
        }
        if self.colptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("colptr not monotone");
        }
        // colptr[0] == 0, monotone, end == nnz ⇒ every column range is
        // in bounds of rowidx/vals from here on.
        for j in 0..self.ncols {
            let rows = &self.rowidx[self.colptr[j]..self.colptr[j + 1]];
            if !is_strictly_increasing(rows) {
                return Err("rows not sorted+unique within a column");
            }
            if let Some(&last) = rows.last() {
                if last as usize >= self.nrows {
                    return Err("row index out of bounds");
                }
            }
        }
        Ok(())
    }

    /// Elementwise (Hadamard) product in the given semiring, restricted to
    /// the intersection of the two nonzero patterns.
    pub fn hadamard_in<S: Semiring<Elem = T>>(&self, _s: S, other: &Self) -> Self {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let mut t = Triples::new(self.nrows, self.ncols);
        for j in 0..self.ncols {
            let (ra, va) = (self.col_rows(j), self.col_vals(j));
            let (rb, vb) = (other.col_rows(j), other.col_vals(j));
            let (mut a, mut b) = (0usize, 0usize);
            while a < ra.len() && b < rb.len() {
                match ra[a].cmp(&rb[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        let v = S::mul(va[a], vb[b]);
                        if !S::is_annihilator(v) {
                            t.push(ra[a], j as Idx, v);
                        }
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
        Self::from_sorted_dedup_triples(&t)
    }

    /// Elementwise semiring sum over the union of the two nonzero patterns.
    pub fn add_elementwise_in<S: Semiring<Elem = T>>(&self, _s: S, other: &Self) -> Self {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let mut t = Triples::with_capacity(self.nrows, self.ncols, self.nnz() + other.nnz());
        for j in 0..self.ncols {
            let (ra, va) = (self.col_rows(j), self.col_vals(j));
            let (rb, vb) = (other.col_rows(j), other.col_vals(j));
            let (mut a, mut b) = (0usize, 0usize);
            while a < ra.len() || b < rb.len() {
                let take_a = b >= rb.len() || (a < ra.len() && ra[a] < rb[b]);
                let take_both = a < ra.len() && b < rb.len() && ra[a] == rb[b];
                if take_both {
                    let v = S::add(va[a], vb[b]);
                    if !S::is_annihilator(v) {
                        t.push(ra[a], j as Idx, v);
                    }
                    a += 1;
                    b += 1;
                } else if take_a {
                    t.push(ra[a], j as Idx, va[a]);
                    a += 1;
                } else {
                    t.push(rb[b], j as Idx, vb[b]);
                    b += 1;
                }
            }
        }
        Self::from_sorted_dedup_triples(&t)
    }

    /// Maximum absolute difference between two matrices viewed as dense,
    /// useful for convergence checks and numerical test assertions.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let mut worst = 0.0f64;
        for j in 0..self.ncols {
            let (ra, va) = (self.col_rows(j), self.col_vals(j));
            let (rb, vb) = (other.col_rows(j), other.col_vals(j));
            let (mut a, mut b) = (0usize, 0usize);
            while a < ra.len() || b < rb.len() {
                let d = if b >= rb.len() || (a < ra.len() && ra[a] < rb[b]) {
                    let d = va[a].to_f64().abs();
                    a += 1;
                    d
                } else if a >= ra.len() || rb[b] < ra[a] {
                    let d = vb[b].to_f64().abs();
                    b += 1;
                    d
                } else {
                    let d = (va[a].to_f64() - vb[b].to_f64()).abs();
                    a += 1;
                    b += 1;
                    d
                };
                worst = worst.max(d);
            }
        }
        worst
    }
}

/// Plus-times shorthands for numeric element types — the MCL default.
/// Each forwards to its `*_in` counterpart with [`PlusTimes`].
impl<T: Value> Csc<T>
where
    PlusTimes<T>: Semiring<Elem = T>,
{
    /// Numeric identity matrix of size `n` (ones on the diagonal).
    pub fn identity(n: usize) -> Self {
        Self::identity_in(PlusTimes::new(), n)
    }

    /// Converts from COO, collapsing duplicates with numeric `+`.
    pub fn from_triples(t: &Triples<T>) -> Self {
        Self::from_triples_in(PlusTimes::new(), t)
    }

    /// Removes stored entries equal to numeric zero.
    pub fn drop_zeros(&mut self) {
        self.drop_zeros_in(PlusTimes::new());
    }

    /// Elementwise numeric product over the pattern intersection.
    pub fn hadamard(&self, other: &Self) -> Self {
        self.hadamard_in(PlusTimes::new(), other)
    }

    /// Elementwise numeric sum over the pattern union.
    pub fn add_elementwise(&self, other: &Self) -> Self {
        self.add_elementwise_in(PlusTimes::new(), other)
    }
}

impl Csc<f64> {
    /// Dense `nrows × ncols` representation in column-major order. Only for
    /// tests and tiny examples.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows * self.ncols];
        for (r, c, v) in self.iter() {
            d[c as usize * self.nrows + r as usize] = v;
        }
        d
    }

    /// Builds from a dense column-major array, skipping zeros.
    pub fn from_dense(nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        let mut t = Triples::new(nrows, ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                let v = data[j * nrows + i];
                if v != 0.0 {
                    t.push(i as Idx, j as Idx, v);
                }
            }
        }
        Self::from_sorted_dedup_triples(&t)
    }
}

/// Converts per-column nonzero counts into a CSC column-pointer array
/// (`ncols` counts → `ncols + 1` pointers). Shared by the SpGEMM kernels.
pub fn counts_to_colptr(counts: &[usize]) -> Vec<usize> {
    let mut colptr = Vec::with_capacity(counts.len() + 1);
    colptr.push(0usize);
    colptr.extend_from_slice(counts);
    // Inclusive prefix over [0, c0, c1, ...] yields [0, c0, c0+c1, ...].
    crate::util::inclusive_prefix_sum(&mut colptr);
    colptr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csc<f64> {
        // [ 2 0 0 4 ]
        // [ 0 3 0 0 ]
        // [ 5 1 0 0 ]
        let mut t = Triples::new(3, 4);
        t.push(0, 0, 2.0);
        t.push(2, 0, 5.0);
        t.push(1, 1, 3.0);
        t.push(2, 1, 1.0);
        t.push(0, 3, 4.0);
        Csc::from_triples(&t)
    }

    #[test]
    fn from_triples_builds_valid_csc() {
        let m = sample();
        m.assert_valid();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.col_nnz(0), 2);
        assert_eq!(m.col_nnz(2), 0);
        assert_eq!(m.get(2, 1), Some(1.0));
        assert_eq!(m.get(1, 0), None);
    }

    #[test]
    fn from_triples_sums_duplicates() {
        let mut t = Triples::new(2, 2);
        t.push(1, 1, 1.5);
        t.push(1, 1, 2.5);
        let m = Csc::from_triples(&t);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 1), Some(4.0));
    }

    #[test]
    fn roundtrip_triples() {
        let m = sample();
        let back = Csc::from_triples(&m.to_triples());
        assert_eq!(m, back);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let tt = m.transposed().transposed();
        assert_eq!(m, tt);
        m.transposed().assert_valid();
    }

    #[test]
    fn transpose_values_move() {
        let m = sample().transposed();
        assert_eq!(m.get(1, 2), Some(1.0));
        assert_eq!(m.get(3, 0), Some(4.0));
    }

    #[test]
    fn column_slice_and_hcat_roundtrip() {
        let m = sample();
        let a = m.column_slice(0..2);
        let b = m.column_slice(2..4);
        assert_eq!(a.ncols(), 2);
        assert_eq!(b.ncols(), 2);
        let glued = Csc::hcat(&[a, b]);
        assert_eq!(glued, m);
    }

    #[test]
    fn select_cols_matches_column_slice_on_contiguous_ranges() {
        let m = sample();
        assert_eq!(m.select_cols(&[1, 2]), m.column_slice(1..3));
        assert_eq!(m.select_cols(&[0, 1, 2, 3]), m);
        let empty = m.select_cols(&[]);
        empty.assert_valid();
        assert_eq!(empty.ncols(), 0);
        assert_eq!(empty.nnz(), 0);
    }

    #[test]
    fn select_cols_relabels_through_the_index_map() {
        let m = sample();
        let keep = [0usize, 2, 3];
        let s = m.select_cols(&keep);
        s.assert_valid();
        assert_eq!(s.ncols(), 3);
        // New column j is old column keep[j], entry for entry.
        for (new, &old) in keep.iter().enumerate() {
            assert_eq!(s.col_rows(new), m.col_rows(old), "col {old}");
            assert_eq!(s.col_vals(new), m.col_vals(old), "col {old}");
        }
        // The inverse map routes old ids back to their compact slot.
        let inv = crate::util::inverse_selection(m.ncols(), &keep);
        assert_eq!(inv[2], 1);
        assert_eq!(inv[1], crate::util::DROPPED);
    }

    #[test]
    fn identity_is_identity() {
        let i = Csc::<f64>::identity(3);
        i.assert_valid();
        let m = sample();
        // m * I should equal m; spot-check via dense mult.
        let d = m.to_dense();
        assert_eq!(d.len(), 12);
        assert_eq!(i.get(2, 2), Some(1.0));
        assert_eq!(i.nnz(), 3);
    }

    #[test]
    fn hadamard_intersects_patterns() {
        let a = sample();
        let mut t = Triples::new(3, 4);
        t.push(0, 0, 10.0);
        t.push(1, 1, 2.0);
        t.push(2, 2, 9.0);
        let b = Csc::from_triples(&t);
        let h = a.hadamard(&b);
        h.assert_valid();
        assert_eq!(h.nnz(), 2);
        assert_eq!(h.get(0, 0), Some(20.0));
        assert_eq!(h.get(1, 1), Some(6.0));
    }

    #[test]
    fn add_elementwise_unions_patterns() {
        let a = sample();
        let mut t = Triples::new(3, 4);
        t.push(0, 0, -2.0); // cancels a's (0,0)
        t.push(2, 2, 9.0); // new entry
        let b = Csc::from_triples(&t);
        let s = a.add_elementwise(&b);
        s.assert_valid();
        assert_eq!(s.get(0, 0), None, "cancellation drops entry");
        assert_eq!(s.get(2, 2), Some(9.0));
        assert_eq!(s.get(2, 0), Some(5.0));
    }

    #[test]
    fn drop_zeros_removes_explicit_zeros() {
        let mut m = sample();
        m.vals[0] = 0.0;
        m.drop_zeros();
        m.assert_valid();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), None);
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        let back = Csc::from_dense(3, 4, &d);
        assert_eq!(m, back);
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.vals[3] += 0.25;
        assert!((a.max_abs_diff(&b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn counts_to_colptr_matches_manual() {
        assert_eq!(counts_to_colptr(&[2, 0, 3]), vec![0, 2, 2, 5]);
        assert_eq!(counts_to_colptr(&[]), vec![0]);
    }

    #[test]
    fn zero_matrix() {
        let z = Csc::<f64>::zero(5, 7);
        z.assert_valid();
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.ncols(), 7);
    }
}
