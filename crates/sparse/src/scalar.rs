//! Scalar trait abstracting the value type stored in sparse matrices.
//!
//! The MCL pipeline runs on `f64`, but the formats and kernels are generic
//! so that symbolic computations (`u32`/`u64` counts) and single-precision
//! variants reuse the same code.

/// Arithmetic scalar stored in a sparse matrix.
///
/// The `(add, mul)` pair forms the semiring used by SpGEMM. For MCL this is
/// the ordinary `(+, ×)` over `f64`.
pub trait Scalar: Copy + Send + Sync + PartialEq + PartialOrd + std::fmt::Debug + 'static {
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Semiring addition.
    fn add(self, other: Self) -> Self;
    /// Semiring multiplication.
    fn mul(self, other: Self) -> Self;
    /// `true` if the value equals the additive identity (used to drop
    /// explicit zeros after accumulation).
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }
    /// Lossy conversion to `f64`, used by instrumentation and statistics.
    fn to_f64(self) -> f64;
}

macro_rules! impl_scalar_float {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            #[inline(always)]
            fn add(self, other: Self) -> Self {
                self + other
            }
            #[inline(always)]
            fn mul(self, other: Self) -> Self {
                self * other
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    };
}

macro_rules! impl_scalar_int {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            #[inline(always)]
            fn add(self, other: Self) -> Self {
                self.wrapping_add(other)
            }
            #[inline(always)]
            fn mul(self, other: Self) -> Self {
                self.wrapping_mul(other)
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    };
}

impl_scalar_float!(f64);
impl_scalar_float!(f32);
impl_scalar_int!(u32);
impl_scalar_int!(u64);
impl_scalar_int!(i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_semiring_identities() {
        assert_eq!(<f64 as Scalar>::ZERO.add(3.5), 3.5);
        assert_eq!(<f64 as Scalar>::ONE.mul(3.5), 3.5);
        assert!(<f64 as Scalar>::ZERO.is_zero());
        assert!(!(1.0f64).is_zero());
    }

    #[test]
    fn int_semiring_wraps() {
        assert_eq!(u32::MAX.add(1), 0);
        assert_eq!(2u64.mul(3), 6);
    }

    #[test]
    fn to_f64_roundtrips_small_ints() {
        assert_eq!(42u32.to_f64(), 42.0);
        assert_eq!((-7i64).to_f64(), -7.0);
    }
}
