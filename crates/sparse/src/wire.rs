//! The explicit wire format: serde-free, little-endian, length-prefixed.
//!
//! The in-process transport of `hipmcl-comm` moves payloads as boxed
//! values — no bytes are ever produced — but any *real* transport (the
//! feature-gated shared-memory process backend, sockets later) has to
//! move serialized frames. These two traits are that layer:
//!
//! * [`WireEncode`] — append the value's canonical byte form to a buffer.
//! * [`WireDecode`] — reconstruct the value from a [`WireReader`].
//!
//! The format is deliberately boring and fully specified here, so two
//! builds of this crate (or two processes of different binaries) agree:
//!
//! | type            | encoding                                         |
//! |-----------------|--------------------------------------------------|
//! | fixed-width int | little-endian, natural width                     |
//! | `usize`         | `u64`, little-endian                             |
//! | `f64`/`f32`     | IEEE-754 bits, little-endian (bit-exact, `-0.0` and NaN payloads included) |
//! | `bool`          | one byte, `0`/`1`                                |
//! | `()`            | zero bytes                                       |
//! | `Vec<T>`        | `u64` length, then each element                  |
//! | `String`        | `u64` length, then UTF-8 bytes                   |
//! | `Option<T>`     | one tag byte (`0`/`1`), then the value if `1`    |
//! | tuples          | fields in order, no framing                      |
//! | `Arc<T>`        | encodes as `T`; decodes to a fresh allocation    |
//! | [`Csc`]/[`Dcsc`]/[`Triples`] | dims as `u64`s, then each array as a `Vec` |
//!
//! Decoding is checked (truncation, tag corruption and length overruns
//! return [`WireError`], not UB), and round-trips are bit-identical:
//! floats travel as raw bits, so exact-zero cancellation artifacts like
//! `-0.0` survive. The matrix decoders rebuild through the *fallible*
//! validating constructors (`try_from_parts` / `try_from_arrays`), so a
//! corrupt frame that parses still cannot produce a structurally invalid
//! matrix — and cannot panic the receiving rank either, which matters
//! once frames arrive over sockets from another machine. The corruption
//! proptests in this crate flip, truncate and extend encoded buffers and
//! require every outcome to be `Ok` or `Err`, never a panic.
//!
//! Scalar types of every shipped semiring (`f64`, `f32`, `u32`, `u64`,
//! `i64`, `bool`) implement both traits; [`crate::Value`] requires them,
//! so any matrix any kernel can produce is transportable by construction.

use crate::csc::Csc;
use crate::dcsc::Dcsc;
use crate::semiring::Value;
use crate::triples::Triples;
use crate::Idx;
use std::sync::Arc;

/// Error produced by [`WireDecode`] on malformed input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// What the decoder was reading when it failed.
    pub what: &'static str,
    /// Byte offset in the buffer at the point of failure.
    pub pos: usize,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {} at byte {}", self.what, self.pos)
    }
}

impl std::error::Error for WireError {}

/// Cursor over a received byte buffer.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError {
                what,
                pos: self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn array<const N: usize>(&mut self, what: &'static str) -> Result<[u8; N], WireError> {
        Ok(self.take(N, what)?.try_into().expect("length checked"))
    }
}

/// Appends the value's canonical little-endian byte form to `out`.
pub trait WireEncode {
    /// Serializes `self` onto the end of `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: serializes into a fresh buffer.
    fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Reconstructs a value from its canonical byte form.
pub trait WireDecode: Sized {
    /// Deserializes one value, advancing the reader.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Decodes a buffer that must contain exactly one value.
    fn decode_all(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError {
                what: "trailing bytes after value",
                pos: r.pos(),
            });
        }
        Ok(v)
    }
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl WireEncode for $t {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl WireDecode for $t {
            #[inline]
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(<$t>::from_le_bytes(r.array(stringify!($t))?))
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl WireEncode for usize {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}
impl WireDecode for usize {
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| WireError {
            what: "usize overflow",
            pos: r.pos(),
        })
    }
}

impl WireEncode for isize {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as i64).encode(out);
    }
}
impl WireDecode for isize {
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = i64::decode(r)?;
        isize::try_from(v).map_err(|_| WireError {
            what: "isize overflow",
            pos: r.pos(),
        })
    }
}

impl WireEncode for f64 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
}
impl WireDecode for f64 {
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl WireEncode for f32 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
}
impl WireDecode for f32 {
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f32::from_bits(u32::decode(r)?))
    }
}

impl WireEncode for bool {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}
impl WireDecode for bool {
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError {
                what: "bool tag",
                pos: r.pos(),
            }),
        }
    }
}

impl WireEncode for () {
    #[inline]
    fn encode(&self, _out: &mut Vec<u8>) {}
}
impl WireDecode for () {
    #[inline]
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for v in self {
            v.encode(out);
        }
    }
}
impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = usize::decode(r)?;
        // A corrupt length cannot force an allocation larger than the
        // remaining buffer could possibly fill (each element is ≥1 byte
        // except `()`, for which reserving nothing is fine).
        let mut v = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl WireEncode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}
impl WireDecode for String {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = usize::decode(r)?;
        let pos = r.pos();
        let bytes = r.take(n, "string bytes")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError {
            what: "invalid utf-8",
            pos,
        })
    }
}

impl WireEncode for &str {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}
impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError {
                what: "option tag",
                pos: r.pos(),
            }),
        }
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}
impl<A: WireDecode, B: WireDecode> WireDecode for (A, B) {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: WireEncode, B: WireEncode, C: WireEncode> WireEncode for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
}
impl<A: WireDecode, B: WireDecode, C: WireDecode> WireDecode for (A, B, C) {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<T: WireEncode> WireEncode for Arc<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_ref().encode(out);
    }
}
impl<T: WireDecode> WireDecode for Arc<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Arc::new(T::decode(r)?))
    }
}

impl<T: Value> WireEncode for Csc<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.nrows().encode(out);
        self.ncols().encode(out);
        self.colptr.encode(out);
        self.rowidx.encode(out);
        self.vals.encode(out);
    }
}
impl<T: Value> WireDecode for Csc<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let nrows = usize::decode(r)?;
        let ncols = usize::decode(r)?;
        let colptr: Vec<usize> = Vec::decode(r)?;
        let rowidx: Vec<Idx> = Vec::decode(r)?;
        let vals: Vec<T> = Vec::decode(r)?;
        // Re-validate the CSC invariants through the *fallible*
        // constructor: a frame that parses but smuggles a malformed
        // matrix is a decode error, not a panic — socket bytes are
        // untrusted in a way in-process frames never were.
        Csc::try_from_parts(nrows, ncols, colptr, rowidx, vals)
            .map_err(|what| WireError { what, pos: r.pos() })
    }
}

impl<T: Value> WireEncode for Dcsc<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.nrows().encode(out);
        self.ncols().encode(out);
        self.jc.encode(out);
        self.cp.encode(out);
        self.ir.encode(out);
        self.num.encode(out);
    }
}
impl<T: Value> WireDecode for Dcsc<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let nrows = usize::decode(r)?;
        let ncols = usize::decode(r)?;
        let jc: Vec<Idx> = Vec::decode(r)?;
        let cp: Vec<usize> = Vec::decode(r)?;
        let ir: Vec<Idx> = Vec::decode(r)?;
        let num: Vec<T> = Vec::decode(r)?;
        Dcsc::try_from_parts(nrows, ncols, jc, cp, ir, num)
            .map_err(|what| WireError { what, pos: r.pos() })
    }
}

impl<T: Value> WireEncode for Triples<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.nrows().encode(out);
        self.ncols().encode(out);
        self.rows.encode(out);
        self.cols.encode(out);
        self.vals.encode(out);
    }
}
impl<T: Value> WireDecode for Triples<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let nrows = usize::decode(r)?;
        let ncols = usize::decode(r)?;
        let rows: Vec<Idx> = Vec::decode(r)?;
        let cols: Vec<Idx> = Vec::decode(r)?;
        let vals: Vec<T> = Vec::decode(r)?;
        Triples::try_from_arrays(nrows, ncols, rows, cols, vals)
            .map_err(|what| WireError { what, pos: r.pos() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireEncode + WireDecode>(v: &T) -> T {
        T::decode_all(&v.encoded()).expect("roundtrip decode")
    }

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(roundtrip(&42u64), 42);
        assert_eq!(roundtrip(&-7i64), -7);
        assert_eq!(roundtrip(&3.5f64), 3.5);
        assert!(roundtrip(&true));
        assert_eq!(roundtrip(&usize::MAX), usize::MAX);
        roundtrip(&());
    }

    #[test]
    fn floats_are_bit_exact() {
        for v in [-0.0f64, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE] {
            assert_eq!(roundtrip(&v).to_bits(), v.to_bits());
        }
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        assert_eq!(roundtrip(&nan).to_bits(), nan.to_bits());
        assert_eq!(roundtrip(&(-0.0f32)).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn containers_roundtrip() {
        assert_eq!(roundtrip(&vec![1u32, 2, 3]), vec![1, 2, 3]);
        assert_eq!(roundtrip(&Vec::<f64>::new()), Vec::<f64>::new());
        assert_eq!(roundtrip(&Some(9u16)), Some(9));
        assert_eq!(roundtrip(&None::<u16>), None);
        assert_eq!(roundtrip(&(1u8, 2u64)), (1, 2));
        assert_eq!(roundtrip(&(1u8, 2u64, 3.0f64)), (1, 2, 3.0));
        assert_eq!(roundtrip(&"hej".to_string()), "hej");
        assert_eq!(*roundtrip(&Arc::new(5u64)), 5);
        assert_eq!(
            roundtrip(&vec![vec![vec![1.0f64]], vec![]]),
            vec![vec![vec![1.0f64]], vec![]]
        );
    }

    #[test]
    fn matrices_roundtrip() {
        let m = Csc::<f64>::identity(5);
        assert_eq!(roundtrip(&m), m);
        let e = Csc::<f64>::zero(3, 4);
        assert_eq!(roundtrip(&e), e);
        let d = Dcsc::from_csc(&m);
        assert_eq!(roundtrip(&d), d);
        let t = m.to_triples();
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn truncated_buffers_error_cleanly() {
        let buf = 1234u64.encoded();
        assert!(u64::decode_all(&buf[..7]).is_err());
        let v = vec![1u32, 2, 3].encoded();
        assert!(Vec::<u32>::decode_all(&v[..v.len() - 1]).is_err());
    }

    #[test]
    fn corrupt_length_does_not_overallocate() {
        let mut buf = Vec::new();
        u64::MAX.encode(&mut buf); // absurd element count, empty body
        assert!(Vec::<u8>::decode_all(&buf).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = 7u32.encoded();
        buf.push(0);
        assert!(u32::decode_all(&buf).is_err());
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(bool::decode_all(&[2]).is_err());
        assert!(Option::<u8>::decode_all(&[9, 0]).is_err());
    }

    #[test]
    fn structurally_invalid_matrices_are_decode_errors() {
        // Frames that *parse* but violate the format invariants must be
        // decode errors, never panics — the receiving rank stays up.

        // Triples with a row index past nrows (the old release-mode
        // hole: `from_arrays` only debug-checked bounds).
        let mut buf = Vec::new();
        2usize.encode(&mut buf); // nrows
        2usize.encode(&mut buf); // ncols
        vec![9 as Idx].encode(&mut buf); // row out of bounds
        vec![0 as Idx].encode(&mut buf);
        vec![1.0f64].encode(&mut buf);
        assert!(Triples::<f64>::decode_all(&buf).is_err());

        // CSC with a non-monotone colptr.
        let mut buf = Vec::new();
        2usize.encode(&mut buf);
        2usize.encode(&mut buf);
        vec![0usize, 2, 1].encode(&mut buf);
        vec![0 as Idx, 1].encode(&mut buf);
        vec![1.0f64, 2.0].encode(&mut buf);
        assert!(Csc::<f64>::decode_all(&buf).is_err());

        // DCSC listing a column past ncols — the index that would have
        // sent `to_csc` out of bounds.
        let mut buf = Vec::new();
        2usize.encode(&mut buf);
        2usize.encode(&mut buf);
        vec![7 as Idx].encode(&mut buf);
        vec![0usize, 1].encode(&mut buf);
        vec![0 as Idx].encode(&mut buf);
        vec![1.0f64].encode(&mut buf);
        assert!(Dcsc::<f64>::decode_all(&buf).is_err());

        // Absurd dimensions with empty arrays: dims are attacker data
        // too (`ncols + 1` must not overflow inside validation).
        let mut buf = Vec::new();
        usize::MAX.encode(&mut buf);
        usize::MAX.encode(&mut buf);
        Vec::<usize>::new().encode(&mut buf);
        Vec::<Idx>::new().encode(&mut buf);
        Vec::<f64>::new().encode(&mut buf);
        assert!(Csc::<f64>::decode_all(&buf).is_err());
    }
}
