//! Property-based tests over the sparse-format invariants.

use crate::colops::{self, PruneParams};
use crate::components::connected_components;
use crate::convert::{gather_2d, split_2d};
use crate::csc::Csc;
use crate::csr::Csr;
use crate::dcsc::Dcsc;
use crate::triples::Triples;
use crate::wire::{WireDecode, WireEncode};
use crate::Idx;
use proptest::prelude::*;

/// Strategy: an f64 drawn from the full bit space plus the adversarial
/// corner values the wire format must carry bit-exactly — signed zeros
/// (exact-zero cancellation leaves `-0.0` behind), infinities (min-plus /
/// max-min identities) and NaNs with payload bits.
fn arb_wire_f64() -> impl Strategy<Value = f64> {
    (any::<u64>(), 0usize..4).prop_map(|(bits, sel)| match sel {
        // Full bit space: subnormals, NaN payloads, everything.
        0 => f64::from_bits(bits),
        // The named corner values.
        1 => [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef),
        ][(bits % 6) as usize],
        // NaNs with arbitrary payload bits.
        2 => f64::from_bits(0x7ff8_0000_0000_0000 | (bits >> 12)),
        // Ordinary finite values.
        _ => (bits as i64) as f64 / 1024.0,
    })
}

/// Strategy: a CSC with arbitrary bit-pattern values (including explicit
/// zeros, which `from_triples` keeps when the value compares equal but
/// the caller pushed it — here we build via `from_parts`-safe triples).
fn arb_wire_csc(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csc<f64>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(m, n)| {
        proptest::collection::vec((0..m as Idx, 0..n as Idx, arb_wire_f64()), 0..=max_nnz).prop_map(
            move |entries| {
                let mut t = Triples::new(m, n);
                for (r, c, v) in entries {
                    t.push(r, c, v);
                }
                Csc::from_triples(&t)
            },
        )
    })
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Strategy: a random matrix as (nrows, ncols, entries).
fn arb_triples(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Triples<f64>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(m, n)| {
        proptest::collection::vec((0..m as Idx, 0..n as Idx, -100i32..100i32), 0..=max_nnz)
            .prop_map(move |entries| {
                let mut t = Triples::new(m, n);
                for (r, c, v) in entries {
                    t.push(r, c, v as f64 / 4.0);
                }
                t
            })
    })
}

/// Strategy: a random square matrix with positive values (MCL-like input).
fn arb_square_positive(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Triples<f64>> {
    (2..=max_dim).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as Idx, 0..n as Idx, 1u32..1000u32), 1..=max_nnz).prop_map(
            move |entries| {
                let mut t = Triples::new(n, n);
                for (r, c, v) in entries {
                    t.push(r, c, v as f64 / 100.0);
                }
                t
            },
        )
    })
}

proptest! {
    #[test]
    fn csc_from_triples_is_always_valid(t in arb_triples(24, 120)) {
        let m = Csc::from_triples(&t);
        m.assert_valid();
        prop_assert!(m.nnz() <= t.nnz());
    }

    #[test]
    fn csc_triples_roundtrip(t in arb_triples(24, 120)) {
        let m = Csc::from_triples(&t);
        let back = Csc::from_triples(&m.to_triples());
        prop_assert_eq!(m, back);
    }

    #[test]
    fn transpose_is_involution(t in arb_triples(20, 100)) {
        let m = Csc::from_triples(&t);
        prop_assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn transpose_preserves_entries(t in arb_triples(16, 60)) {
        let m = Csc::from_triples(&t);
        let mt = m.transposed();
        for (r, c, v) in m.iter() {
            prop_assert_eq!(mt.get(c as usize, r as usize), Some(v));
        }
    }

    #[test]
    fn dcsc_roundtrip(t in arb_triples(30, 40)) {
        let m = Csc::from_triples(&t);
        let d = Dcsc::from_csc(&m);
        d.assert_valid();
        prop_assert_eq!(d.to_csc(), m);
        prop_assert_eq!(d.nnz(), d.cp[d.nzc()]);
    }

    #[test]
    fn csr_roundtrip(t in arb_triples(20, 80)) {
        let m = Csc::from_triples(&t);
        let r = Csr::from_csc(&m);
        r.assert_valid();
        prop_assert_eq!(r.to_csc(), m);
    }

    #[test]
    fn split_gather_2d_roundtrip(t in arb_triples(25, 100), pr in 1usize..4, pc in 1usize..4) {
        let mut canon = t.clone();
        canon.sum_duplicates();
        let m = canon.nrows();
        let n = canon.ncols();
        // split_2d needs dims >= parts to give every block real extent; the
        // balanced chunking tolerates empty chunks, so no restriction needed.
        let blocks = split_2d(&canon, pr, pc);
        let mut back = gather_2d(&blocks, m, n, pr, pc);
        back.sum_duplicates();
        prop_assert_eq!(back, canon);
    }

    #[test]
    fn normalize_then_columns_sum_to_one(t in arb_square_positive(20, 100)) {
        let mut m = Csc::from_triples(&t);
        colops::normalize_columns(&mut m);
        for j in 0..m.ncols() {
            let s: f64 = m.col_vals(j).iter().sum();
            if m.col_nnz(j) > 0 {
                prop_assert!((s - 1.0).abs() < 1e-9, "col {} sums to {}", j, s);
            }
        }
    }

    #[test]
    fn inflate_keeps_stochastic_and_order(t in arb_square_positive(16, 80)) {
        let mut m = Csc::from_triples(&t);
        colops::normalize_columns(&mut m);
        let before = m.clone();
        colops::inflate(&mut m, 2.0);
        for j in 0..m.ncols() {
            let s: f64 = m.col_vals(j).iter().sum();
            if m.col_nnz(j) > 0 {
                prop_assert!((s - 1.0).abs() < 1e-9);
            }
            // Inflation preserves the relative order of entries in a column.
            let b = before.col_vals(j);
            let a = m.col_vals(j);
            for x in 1..a.len() {
                if b[x - 1] < b[x] {
                    prop_assert!(a[x - 1] <= a[x]);
                }
            }
        }
    }

    #[test]
    fn prune_output_valid_and_bounded(t in arb_square_positive(20, 150), k in 1usize..8) {
        let mut m = Csc::from_triples(&t);
        colops::normalize_columns(&mut m);
        let p = PruneParams { cutoff: 1e-3, select: k, recover_num: 0, recover_pct: 0.0 };
        let (out, _) = colops::prune(&m, &p);
        out.assert_valid();
        for j in 0..out.ncols() {
            prop_assert!(out.col_nnz(j) <= k.max(1));
            if m.col_nnz(j) > 0 {
                prop_assert!(out.col_nnz(j) >= 1, "columns never emptied");
            }
        }
    }

    #[test]
    fn symmetrize_is_symmetric(t in arb_square_positive(14, 60)) {
        let m = Csc::from_triples(&t);
        let s = colops::symmetrize_max(&m);
        prop_assert_eq!(s.transposed(), s.clone());
    }

    #[test]
    fn components_labels_are_consistent(t in arb_square_positive(20, 60)) {
        let m = Csc::from_triples(&t);
        let (labels, k) = connected_components(&m);
        prop_assert_eq!(labels.len(), m.ncols());
        prop_assert!(k >= 1 && k <= m.ncols());
        // Every edge joins same-label endpoints.
        for (r, c, _) in m.iter() {
            prop_assert_eq!(labels[r as usize], labels[c as usize]);
        }
        // Labels are dense 0..k.
        let mut seen = vec![false; k];
        for &l in &labels {
            seen[l as usize] = true;
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn add_elementwise_commutes(a in arb_triples(12, 50), b in arb_triples(12, 50)) {
        // Force equal dims by embedding both in a common frame.
        let m = a.nrows().max(b.nrows());
        let n = a.ncols().max(b.ncols());
        let embed = |t: &Triples<f64>| {
            let mut out = Triples::new(m, n);
            for (r, c, v) in t.iter() { out.push(r, c, v); }
            Csc::from_triples(&out)
        };
        let (x, y) = (embed(&a), embed(&b));
        prop_assert_eq!(x.add_elementwise(&y), y.add_elementwise(&x));
    }

    #[test]
    fn wire_scalars_roundtrip_bit_identical(bits in any::<u64>(), x in arb_wire_f64(),
                                            u in any::<u32>(), i in any::<i64>(), b in any::<bool>()) {
        let raw = f64::from_bits(bits);
        prop_assert_eq!(f64::decode_all(&raw.encoded()).unwrap().to_bits(), bits);
        prop_assert_eq!(f64::decode_all(&x.encoded()).unwrap().to_bits(), x.to_bits());
        let f = (bits as f32).to_bits();
        let f32v = f32::from_bits(f);
        prop_assert_eq!(f32::decode_all(&f32v.encoded()).unwrap().to_bits(), f);
        prop_assert_eq!(u32::decode_all(&u.encoded()).unwrap(), u);
        prop_assert_eq!(i64::decode_all(&i.encoded()).unwrap(), i);
        prop_assert_eq!(bool::decode_all(&b.encoded()).unwrap(), b);
    }

    #[test]
    fn wire_csc_roundtrips_bit_identical(m in arb_wire_csc(20, 100)) {
        let back = Csc::<f64>::decode_all(&m.encoded()).unwrap();
        prop_assert_eq!(back.nrows(), m.nrows());
        prop_assert_eq!(back.ncols(), m.ncols());
        prop_assert_eq!(&back.colptr, &m.colptr);
        prop_assert_eq!(&back.rowidx, &m.rowidx);
        prop_assert!(bits_eq(&back.vals, &m.vals));
    }

    #[test]
    fn wire_dcsc_roundtrips_bit_identical(m in arb_wire_csc(30, 60)) {
        let d = Dcsc::from_csc(&m);
        let back = Dcsc::<f64>::decode_all(&d.encoded()).unwrap();
        prop_assert_eq!(back.nrows(), d.nrows());
        prop_assert_eq!(back.ncols(), d.ncols());
        prop_assert_eq!(&back.jc, &d.jc);
        prop_assert_eq!(&back.cp, &d.cp);
        prop_assert_eq!(&back.ir, &d.ir);
        prop_assert!(bits_eq(&back.num, &d.num));
    }

    #[test]
    fn wire_keeps_cancellation_artifacts(n in 1usize..16, sels in proptest::collection::vec(0usize..4, 1..16)) {
        let vals: Vec<f64> = sels
            .iter()
            .map(|&s| [-0.0f64, 0.0, f64::NAN, f64::INFINITY][s])
            .collect();
        // Exact-zero cancellation leaves `-0.0`/NaN entries behind; build a
        // slab that stores them verbatim (no summing path) and check the
        // wire carries every bit. One column, rows 0..len.
        let rows: Vec<Idx> = (0..vals.len().min(n.max(vals.len())) as Idx).collect();
        let mut t = Triples::new(rows.len(), 1);
        for (r, v) in rows.iter().zip(&vals) {
            t.push(*r, 0, *v);
        }
        let m = Csc::from_nodup_triples(&t);
        let back = Csc::<f64>::decode_all(&m.encoded()).unwrap();
        prop_assert!(bits_eq(&back.vals, &m.vals));
        let d = Dcsc::from_csc(&m);
        let dback = Dcsc::<f64>::decode_all(&d.encoded()).unwrap();
        prop_assert!(bits_eq(&dback.num, &d.num));
    }

    #[test]
    fn wire_empty_slabs_roundtrip(m in 1usize..40, n in 1usize..40) {
        let e = Csc::<f64>::zero(m, n);
        prop_assert_eq!(Csc::<f64>::decode_all(&e.encoded()).unwrap(), e);
        let d = Dcsc::<f64>::zero(m, n);
        let back = Dcsc::<f64>::decode_all(&d.encoded()).unwrap();
        prop_assert_eq!(back.nnz(), 0);
        prop_assert_eq!(back.nrows(), m);
        prop_assert_eq!(back.ncols(), n);
    }

    #[test]
    fn wire_corrupted_frames_error_never_panic(
        m in arb_wire_csc(12, 40),
        flips in proptest::collection::vec((any::<u16>(), 0u32..8), 1..8),
        cut in any::<u16>(),
        extra in 1usize..9,
    ) {
        // Socket frames are untrusted bytes: truncate, extend and
        // bit-flip valid encodings of each matrix format and require the
        // decoder to return (`Ok` when the corruption landed in a value
        // is fine) — any panic is a bug.
        fn total<T: WireDecode>(buf: &[u8]) {
            let _ = T::decode_all(buf);
        }
        fn corruptions(buf: &[u8], flips: &[(u16, u32)], cut: u16, extra: usize) -> Vec<Vec<u8>> {
            let truncated = buf[..cut as usize % (buf.len() + 1)].to_vec();
            let mut extended = buf.to_vec();
            extended.extend(std::iter::repeat_n(0xA5, extra));
            let mut flipped = buf.to_vec();
            for &(pos, bit) in flips {
                let i = pos as usize % flipped.len();
                flipped[i] ^= 1 << bit;
            }
            vec![truncated, extended, flipped]
        }
        let d = Dcsc::from_csc(&m);
        let t = m.to_triples();
        for buf in corruptions(&m.encoded(), &flips, cut, extra) {
            total::<Csc<f64>>(&buf);
        }
        for buf in corruptions(&d.encoded(), &flips, cut, extra) {
            total::<Dcsc<f64>>(&buf);
        }
        for buf in corruptions(&t.encoded(), &flips, cut, extra) {
            total::<Triples<f64>>(&buf);
        }
    }

    #[test]
    fn hadamard_pattern_is_intersection(a in arb_triples(12, 50)) {
        let m = Csc::from_triples(&a);
        let h = m.hadamard(&m);
        // Squaring never grows the pattern; zero values may shrink it.
        prop_assert!(h.nnz() <= m.nnz());
        for (r, c, v) in h.iter() {
            let orig = m.get(r as usize, c as usize).unwrap();
            prop_assert!((v - orig * orig).abs() < 1e-12);
        }
    }
}
