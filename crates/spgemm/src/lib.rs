//! Local (in-node) sparse matrix–matrix multiplication for `hipmcl-rs`.
//!
//! The MCL expansion step `B = A·A` is an SpGEMM whose character changes as
//! the iteration proceeds: early iterations are sparse (tens of nonzeros
//! per column) while mid-iterations approach ~1000 nonzeros per column with
//! large compression factors `cf = flops / nnz(C)`. No single accumulator
//! wins everywhere (§VI, [Nagasaka et al. 2018]):
//!
//! * [`heap`] — priority-queue accumulation, the *original HipMCL* kernel.
//!   Wins at small `cf` (≈ sparse graph processing).
//! * [`hash`] — hash-table accumulation, the paper's replacement. Wins at
//!   large `cf`, which dominates MCL runs.
//! * [`spa`] — dense sparse-accumulator (Gilbert/Moler/Schreiber), the
//!   classic baseline; fast for short, dense outputs, memory-hungry.
//!
//! [`hypersparse`] multiplies DCSC operands directly — the CombBLAS
//! HyperSparseGEMM analogue for blocks with `nnz < ncols` (large grids).
//!
//! [`symbolic`] computes exact output structure counts (the "exact" memory
//! estimator), and [`estimate`] implements Cohen's probabilistic `nnz(AB)`
//! estimator (§V). [`hybrid`] picks a CPU kernel from `flops`/`cf` the way
//! the paper's recipe does; the full CPU/GPU selection lives in
//! `hipmcl-gpu::select`.
//!
//! All kernels are column-parallel over the output with rayon and produce
//! CSC with sorted, duplicate-free columns (validated in tests against a
//! dense reference and against each other).

pub mod analysis;
pub mod estimate;
pub mod hash;
pub mod heap;
pub mod hybrid;
pub mod hypersparse;
pub mod spa;
pub mod symbolic;

mod assemble;

pub use analysis::{flops, flops_per_column, MultAnalysis};
pub use estimate::CohenEstimator;
pub use hybrid::CpuAlgo;

pub mod testutil;

#[cfg(test)]
mod proptests;
