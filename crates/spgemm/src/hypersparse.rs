//! Hypersparse SpGEMM on DCSC operands (Buluç & Gilbert, IPDPS 2008).
//!
//! At high process counts the 2D blocks have `nnz < ncols` and a
//! CSC-walking kernel would waste `O(ncols)` per multiply just scanning
//! empty column pointers. This kernel touches only the *non-empty*
//! columns: it iterates `B`'s `jc` array and resolves each needed column
//! of `A` by binary search in `A.jc`, so the work is
//! `O(nzc(B)·lg nzc(A) + flops)` — independent of the logical dimension.
//! This is the algorithmic core of CombBLAS's `HyperSparseGEMM`, which
//! HipMCL's distributed blocks use on large grids.

use hipmcl_sparse::{Dcsc, Idx, PlusTimes, Semiring, Value};

/// Multiplies `C = A · B` with both operands (and the result) in DCSC, in
/// the given semiring.
///
/// Accumulation is hash-based per output column (the §VI choice); output
/// columns are produced sorted. Sequential: hypersparse blocks are small
/// by construction (`nnz/P` elements), and the caller parallelizes across
/// blocks/stages, not within them.
pub fn multiply_dcsc_in<S: Semiring>(_s: S, a: &Dcsc<S::Elem>, b: &Dcsc<S::Elem>) -> Dcsc<S::Elem> {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");

    let mut jc: Vec<Idx> = Vec::new();
    let mut cp: Vec<usize> = vec![0];
    let mut ir: Vec<Idx> = Vec::new();
    let mut num: Vec<S::Elem> = Vec::new();

    // Scratch accumulator reused across output columns.
    let mut acc: Vec<(Idx, S::Elem)> = Vec::new();

    for (j, b_rows, b_vals) in b.iter_cols() {
        acc.clear();
        for (bi, &k) in b_rows.iter().enumerate() {
            // Locate column k of A among its non-empty columns.
            let Ok(pos) = a.jc.binary_search(&k) else {
                continue;
            };
            let range = a.cp[pos]..a.cp[pos + 1];
            let bv = b_vals[bi];
            for t in range {
                acc.push((a.ir[t], S::mul(a.num[t], bv)));
            }
        }
        if acc.is_empty() {
            continue;
        }
        // Sort-compress the accumulated products (columns are tiny in the
        // hypersparse regime, so sorting beats table setup).
        acc.sort_unstable_by_key(|&(r, _)| r);
        let col_start = ir.len();
        for &(r, v) in acc.iter() {
            if ir.len() > col_start && *ir.last().unwrap() == r {
                let last = num.last_mut().unwrap();
                *last = S::add(*last, v);
            } else {
                ir.push(r);
                num.push(v);
            }
        }
        // Drop entries that cancelled to the annihilator.
        let mut w = col_start;
        for i in col_start..ir.len() {
            if !S::is_annihilator(num[i]) {
                ir[w] = ir[i];
                num[w] = num[i];
                w += 1;
            }
        }
        ir.truncate(w);
        num.truncate(w);
        if ir.len() > col_start {
            jc.push(j);
            cp.push(ir.len());
        }
    }

    Dcsc::from_parts(a.nrows(), b.ncols(), jc, cp, ir, num)
}

/// [`multiply_dcsc_in`] with the numeric plus-times semiring.
pub fn multiply_dcsc<T: Value>(a: &Dcsc<T>, b: &Dcsc<T>) -> Dcsc<T>
where
    PlusTimes<T>: Semiring<Elem = T>,
{
    multiply_dcsc_in(PlusTimes::new(), a, b)
}

/// `flops(A·B)` for DCSC operands, `O(nzc(B)·lg nzc(A) + nnz(B))`.
pub fn flops_dcsc<T: Value>(a: &Dcsc<T>, b: &Dcsc<T>) -> u64 {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");
    let mut total = 0u64;
    for (_, b_rows, _) in b.iter_cols() {
        for &k in b_rows {
            if let Ok(pos) = a.jc.binary_search(&k) {
                total += (a.cp[pos + 1] - a.cp[pos]) as u64;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_csc;
    use hipmcl_sparse::Triples;

    fn hypersparse(n: usize, nnz: usize, seed: u64) -> Dcsc<f64> {
        Dcsc::from_csc(&random_csc(n, n, nnz, seed))
    }

    #[test]
    fn matches_csc_kernel_on_hypersparse_blocks() {
        // 500x500 with 60 nonzeros: deeply hypersparse.
        let a = hypersparse(500, 60, 1);
        let b = hypersparse(500, 55, 2);
        let want = crate::hash::multiply(&a.to_csc(), &b.to_csc());
        let got = multiply_dcsc(&a, &b).to_csc();
        got.assert_valid();
        assert_eq!(got.colptr, want.colptr, "pattern");
        assert_eq!(got.rowidx, want.rowidx, "pattern");
        assert!(got.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn matches_csc_kernel_on_denser_blocks() {
        let a = hypersparse(60, 400, 3);
        let got = multiply_dcsc(&a, &a).to_csc();
        let want = crate::hash::multiply(&a.to_csc(), &a.to_csc());
        // Same pattern; values agree up to summation-order rounding.
        assert_eq!(got.colptr, want.colptr, "pattern");
        assert_eq!(got.rowidx, want.rowidx, "pattern");
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn flops_agrees_with_csc_analysis() {
        let a = hypersparse(200, 150, 4);
        let b = hypersparse(200, 140, 5);
        assert_eq!(
            flops_dcsc(&a, &b),
            crate::analysis::flops(&a.to_csc(), &b.to_csc())
        );
    }

    #[test]
    fn empty_operands() {
        let a = Dcsc::<f64>::zero(100, 100);
        let c = multiply_dcsc(&a, &a);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.nzc(), 0);
        assert_eq!(flops_dcsc(&a, &a), 0);
    }

    #[test]
    fn cancellation_drops_entries_and_columns() {
        // A row pair engineered so products cancel exactly.
        let mut ta = Triples::new(4, 4);
        ta.push(0, 0, 1.0);
        ta.push(0, 1, -1.0);
        let mut tb = Triples::new(4, 4);
        tb.push(0, 2, 1.0);
        tb.push(1, 2, 1.0);
        let a = Dcsc::from_csc(&hipmcl_sparse::Csc::from_triples(&ta));
        let b = Dcsc::from_csc(&hipmcl_sparse::Csc::from_triples(&tb));
        let c = multiply_dcsc(&a, &b);
        assert_eq!(c.nnz(), 0, "1·1 + (−1)·1 cancels");
        assert_eq!(c.nzc(), 0, "fully cancelled columns are not listed");
    }

    #[test]
    fn output_is_hypersparse_for_hypersparse_inputs() {
        let a = hypersparse(1000, 80, 6);
        let c = multiply_dcsc(&a, &a);
        c.assert_valid();
        assert!(
            c.nzc() <= a.nzc(),
            "output columns bounded by B's non-empty columns"
        );
    }
}
