//! Probabilistic `nnz(A·B)` estimation — Cohen's layered-graph min-key
//! sketch (§V of the paper; Cohen, J. Comb. Opt. 1998).
//!
//! The product `C = AB` is viewed as a three-layer graph: first-layer
//! vertices are the rows of `A`, middle-layer vertices the columns of `A`
//! (= rows of `B`), third-layer vertices the columns of `B`. `nnz(C_{*j})`
//! is the number of first-layer vertices reachable from third-layer vertex
//! `j`. Each first-layer vertex draws `r` keys from Exp(λ=1); propagating
//! the *minimum* key across layers makes the final key of `j` the minimum
//! over its reachability set, and for exponential keys
//! `(r − 1) / Σ_{t=1..r} key_{j,t}` is an unbiased estimator of that set's
//! size. Cost: `O(r · (nnz A + nnz B))` — independent of `flops`, which is
//! the whole point when `cf` is large.
//!
//! Both propagation steps are column-parallel; per-vertex key blocks are
//! contiguous so the inner min-loops vectorize.

use hipmcl_sparse::{Csc, Value};
use rand::SeedableRng;
use rand_distr::{Distribution, Exp1};
use rayon::prelude::*;

/// Reusable estimator configured with a key count and an RNG seed.
///
/// `r` controls accuracy: the relative standard error of a single column
/// estimate is `≈ 1/√(r−2)`. The paper finds r ∈ {3,5,7,10} already lands
/// within ~10 % of the exact count on MCL matrices (Fig. 6).
#[derive(Clone, Copy, Debug)]
pub struct CohenEstimator {
    /// Number of independent exponential keys per vertex.
    pub r: usize,
    /// Seed for the key draws (deterministic runs).
    pub seed: u64,
}

impl CohenEstimator {
    /// Creates an estimator with `r` keys.
    pub fn new(r: usize, seed: u64) -> Self {
        assert!(r >= 2, "the estimator needs at least two keys");
        Self { r, seed }
    }

    /// Draws the first-layer key matrix: `r` keys per row of `A`,
    /// stored row-major (`keys[row * r + t]`).
    pub fn draw_keys(&self, nrows: usize) -> Vec<f32> {
        let r = self.r;
        (0..nrows)
            .into_par_iter()
            .flat_map_iter(|i| {
                let mut rng = rand::rngs::SmallRng::seed_from_u64(
                    self.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                );
                (0..r).map(move |_| {
                    let e: f64 = Exp1.sample(&mut rng);
                    e as f32
                })
            })
            .collect()
    }

    /// Propagates min-keys one layer: given keys on the rows of `m`
    /// (`r` per row), produces keys on the columns of `m`
    /// (`key_col[j][t] = min over rows i ∈ m_{*j} of key_row[i][t]`).
    /// Columns with no nonzeros get `+∞` keys (empty reachability).
    pub fn propagate<T: Value>(&self, m: &Csc<T>, row_keys: &[f32]) -> Vec<f32> {
        assert_eq!(row_keys.len(), m.nrows() * self.r);
        let r = self.r;
        (0..m.ncols())
            .into_par_iter()
            .flat_map_iter(|j| {
                let rows = m.col_rows(j);
                (0..r).map(move |t| {
                    let mut mn = f32::INFINITY;
                    for &i in rows {
                        let k = row_keys[i as usize * r + t];
                        if k < mn {
                            mn = k;
                        }
                    }
                    mn
                })
            })
            .collect()
    }

    /// Converts final keys (per column of `B`) into per-column cardinality
    /// estimates `(r − 1) / Σ_t key_t`. Empty columns estimate 0.
    pub fn estimates_from_keys(&self, col_keys: &[f32], ncols: usize) -> Vec<f64> {
        assert_eq!(col_keys.len(), ncols * self.r);
        let r = self.r;
        (0..ncols)
            .into_par_iter()
            .map(|j| {
                let keys = &col_keys[j * r..(j + 1) * r];
                if keys.iter().any(|k| k.is_infinite()) {
                    return 0.0;
                }
                let sum: f64 = keys.iter().map(|&k| k as f64).sum();
                if sum <= 0.0 {
                    0.0
                } else {
                    (r as f64 - 1.0) / sum
                }
            })
            .collect()
    }

    /// Estimates `nnz(A·B)` per output column. The full pipeline:
    /// draw keys on rows of `A` → propagate through `A` → propagate
    /// through `B` → estimate.
    pub fn estimate_columns<T: Value>(&self, a: &Csc<T>, b: &Csc<T>) -> Vec<f64> {
        assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");
        let row_keys = self.draw_keys(a.nrows());
        let mid_keys = self.propagate(a, &row_keys);
        let out_keys = self.propagate(b, &mid_keys);
        self.estimates_from_keys(&out_keys, b.ncols())
    }

    /// Estimates total `nnz(A·B)`.
    pub fn estimate_total<T: Value>(&self, a: &Csc<T>, b: &Csc<T>) -> f64 {
        self.estimate_columns(a, b).iter().sum()
    }

    /// Number of scalar operations the estimator performs — the paper's
    /// `O(r · (nnz A + nnz B))` cost used by the machine model.
    pub fn op_count<T: Value>(&self, a: &Csc<T>, b: &Csc<T>) -> u64 {
        self.r as u64 * (a.nnz() as u64 + b.nnz() as u64)
    }
}

/// Convenience: relative error `|est − exact| / exact` (0 when both are 0).
pub fn relative_error(estimate: f64, exact: f64) -> f64 {
    if exact == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - exact).abs() / exact
    }
}

/// Draws a seeded uniform in `[0,1)` — test helper for key sanity checks.
#[cfg(test)]
pub(crate) fn uniform01(seed: u64) -> f64 {
    use rand::Rng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_csc;

    #[test]
    fn keys_are_positive_and_deterministic() {
        let e = CohenEstimator::new(5, 42);
        let k1 = e.draw_keys(100);
        let k2 = e.draw_keys(100);
        assert_eq!(k1, k2, "same seed, same keys");
        assert!(k1.iter().all(|&k| k > 0.0));
        assert_eq!(k1.len(), 500);
        // Exp(1) has mean 1; the sample mean over 500 draws should be close.
        let mean: f64 = k1.iter().map(|&k| k as f64).sum::<f64>() / 500.0;
        assert!((mean - 1.0).abs() < 0.2, "mean {mean} far from 1.0");
    }

    #[test]
    fn propagate_takes_columnwise_min() {
        // Column 0 of m touches rows 0 and 2.
        let mut t = hipmcl_sparse::Triples::new(3, 2);
        t.push(0, 0, 1.0);
        t.push(2, 0, 1.0);
        t.push(1, 1, 1.0);
        let m = Csc::from_triples(&t);
        let e = CohenEstimator::new(2, 1);
        let row_keys = vec![0.5, 0.9, 0.8, 0.2, 0.1, 0.7]; // rows 0,1,2
        let col_keys = e.propagate(&m, &row_keys);
        assert_eq!(col_keys, vec![0.1, 0.7, 0.8, 0.2]);
    }

    #[test]
    fn propagate_empty_column_is_infinite() {
        let m = Csc::<f64>::zero(2, 2);
        let e = CohenEstimator::new(3, 1);
        let keys = e.propagate(&m, &[1.0; 6]);
        assert!(keys.iter().all(|k| k.is_infinite()));
        let est = e.estimates_from_keys(&keys, 2);
        assert_eq!(est, vec![0.0, 0.0]);
    }

    #[test]
    fn estimate_is_close_on_random_matrix() {
        // Moderately dense random square: exact nnz(A²) vs estimate.
        let a = random_csc(300, 300, 6000, 5);
        let exact = crate::symbolic::output_nnz(&a, &a) as f64;
        let e = CohenEstimator::new(10, 7);
        let est = e.estimate_total(&a, &a);
        let err = relative_error(est, exact);
        assert!(
            err < 0.15,
            "relative error {err} too large (est {est}, exact {exact})"
        );
    }

    #[test]
    fn more_keys_reduce_error_on_average() {
        let a = random_csc(200, 200, 3000, 9);
        let exact = crate::symbolic::output_nnz(&a, &a) as f64;
        // Average error over several seeds for r=3 vs r=10.
        let avg_err = |r: usize| {
            (0..8)
                .map(|s| relative_error(CohenEstimator::new(r, s).estimate_total(&a, &a), exact))
                .sum::<f64>()
                / 8.0
        };
        assert!(avg_err(10) < avg_err(3), "r=10 should beat r=3 on average");
    }

    #[test]
    fn op_count_formula() {
        let a = random_csc(10, 10, 30, 1);
        let e = CohenEstimator::new(4, 0);
        assert_eq!(e.op_count(&a, &a), 4 * 2 * a.nnz() as u64);
    }

    #[test]
    fn relative_error_conventions() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(5.0, 0.0), f64::INFINITY);
        assert!((relative_error(11.0, 10.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two keys")]
    fn r_below_two_rejected() {
        let _ = CohenEstimator::new(1, 0);
    }

    #[test]
    fn uniform01_in_range() {
        let u = uniform01(3);
        assert!((0.0..1.0).contains(&u));
    }
}
