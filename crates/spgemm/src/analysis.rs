//! Multiplication analysis: `flops`, per-column `flops`, and the
//! compression factor `cf = flops / nnz(C)` that drives kernel selection.
//!
//! Notation follows the paper: `flops(AB) = Σ_j Σ_{i ∈ inds(B_{*j})}
//! nnz(A_{*i})` counts the nontrivial multiply-adds; `cf` measures how much
//! accumulation collapses them into output entries.

use hipmcl_sparse::{Csc, Value};
use rayon::prelude::*;

/// Number of nontrivial scalar multiplications in `A · B`.
///
/// This is the exact arithmetic work of any Gustavson-style SpGEMM and is
/// `O(nnz(B))` to compute — cheap enough to evaluate before every local
/// multiplication for kernel selection.
pub fn flops<T: Value, U: Value>(a: &Csc<T>, b: &Csc<U>) -> u64 {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");
    let col_nnz_a: Vec<u64> = (0..a.ncols()).map(|k| a.col_nnz(k) as u64).collect();
    (0..b.ncols())
        .into_par_iter()
        .map(|j| {
            b.col_rows(j)
                .iter()
                .map(|&k| col_nnz_a[k as usize])
                .sum::<u64>()
        })
        .sum()
}

/// Per-output-column `flops`, used to size hash tables and to split phases.
pub fn flops_per_column<T: Value, U: Value>(a: &Csc<T>, b: &Csc<U>) -> Vec<u64> {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");
    let col_nnz_a: Vec<u64> = (0..a.ncols()).map(|k| a.col_nnz(k) as u64).collect();
    (0..b.ncols())
        .into_par_iter()
        .map(|j| {
            b.col_rows(j)
                .iter()
                .map(|&k| col_nnz_a[k as usize])
                .sum::<u64>()
        })
        .collect()
}

/// Summary of one multiplication instance, as consumed by the hybrid
/// selector and the machine model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MultAnalysis {
    /// Nontrivial multiply count.
    pub flops: u64,
    /// Output nonzero count (exact or estimated, depending on provenance).
    pub nnz_out: u64,
}

impl MultAnalysis {
    /// Compression factor `flops / nnz(C)`. Two empty-output cases are
    /// distinguished: zero flops means nothing happened (cf = 1, by
    /// convention), while positive flops with an empty output means every
    /// partial product cancelled — compression is infinite, and the
    /// dispatch comparison must see it on the high-cf (hash) side rather
    /// than defaulting into the heap regime.
    pub fn cf(&self) -> f64 {
        match (self.nnz_out, self.flops) {
            (0, 0) => 1.0,
            (0, _) => f64::INFINITY,
            (nnz, f) => f as f64 / nnz as f64,
        }
    }
}

/// Upper bound on `nnz(A·B)`: `min(flops, nrows(A) · ncols(B))`. Used when
/// neither an exact symbolic pass nor a probabilistic estimate is available.
pub fn nnz_upper_bound<T: Value, U: Value>(a: &Csc<T>, b: &Csc<U>) -> u64 {
    let f = flops(a, b);
    f.min(a.nrows() as u64 * b.ncols() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_sparse::Triples;

    fn ab() -> (Csc<f64>, Csc<f64>) {
        // A: 3x3 with cols of nnz 2,1,0 ; B: 3x2
        let mut ta = Triples::new(3, 3);
        ta.push(0, 0, 1.0);
        ta.push(2, 0, 1.0);
        ta.push(1, 1, 1.0);
        let mut tb = Triples::new(3, 2);
        tb.push(0, 0, 1.0); // col0 of B hits A col0 (nnz 2)
        tb.push(1, 0, 1.0); // and A col1 (nnz 1)
        tb.push(2, 1, 1.0); // col1 hits A col2 (nnz 0)
        (Csc::from_triples(&ta), Csc::from_triples(&tb))
    }

    #[test]
    fn flops_counts_nontrivial_products() {
        let (a, b) = ab();
        assert_eq!(flops(&a, &b), 3);
        assert_eq!(flops_per_column(&a, &b), vec![3, 0]);
    }

    #[test]
    fn flops_of_identity_square() {
        let i = Csc::<f64>::identity(5);
        assert_eq!(flops(&i, &i), 5);
    }

    #[test]
    fn cf_convention() {
        assert_eq!(
            MultAnalysis {
                flops: 12,
                nnz_out: 4
            }
            .cf(),
            3.0
        );
        assert_eq!(
            MultAnalysis {
                flops: 0,
                nnz_out: 0
            }
            .cf(),
            1.0
        );
        // Positive flops, empty output: all products cancelled, so the
        // compression factor is infinite (not 1.0 — the old convention
        // misrouted Auto dispatch toward the heap).
        assert_eq!(
            MultAnalysis {
                flops: 12,
                nnz_out: 0
            }
            .cf(),
            f64::INFINITY
        );
    }

    #[test]
    fn upper_bound_caps_at_dense() {
        let (a, b) = ab();
        assert!(nnz_upper_bound(&a, &b) <= 6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Csc::<f64>::identity(3);
        let b = Csc::<f64>::identity(4);
        let _ = flops(&a, &b);
    }
}
