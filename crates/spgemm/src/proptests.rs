//! Property tests: all SpGEMM kernels agree with each other and with the
//! dense reference; symbolic and probabilistic estimators are consistent.

use crate::testutil::dense_reference;
use crate::{hash, heap, spa, symbolic};
use hipmcl_sparse::{Csc, Idx, Triples};
use proptest::prelude::*;

/// Strategy: a pair of multiplicable random matrices with positive values.
fn arb_mult_pair() -> impl Strategy<Value = (Csc<f64>, Csc<f64>)> {
    (1usize..16, 1usize..16, 1usize..16).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec((0..m as Idx, 0..k as Idx, 1u32..100), 0..80);
        let b = proptest::collection::vec((0..k as Idx, 0..n as Idx, 1u32..100), 0..80);
        (a, b).prop_map(move |(ea, eb)| {
            let mut ta = Triples::new(m, k);
            for (r, c, v) in ea {
                ta.push(r, c, v as f64 / 16.0);
            }
            let mut tb = Triples::new(k, n);
            for (r, c, v) in eb {
                tb.push(r, c, v as f64 / 16.0);
            }
            (Csc::from_triples(&ta), Csc::from_triples(&tb))
        })
    })
}

proptest! {
    #[test]
    fn kernels_match_dense_reference((a, b) in arb_mult_pair()) {
        let want = dense_reference(&a, &b);
        for (name, got) in [
            ("heap", heap::multiply(&a, &b)),
            ("hash", hash::multiply(&a, &b)),
            ("spa", spa::multiply(&a, &b)),
        ] {
            got.assert_valid();
            prop_assert!(got.max_abs_diff(&want) < 1e-9, "{} kernel mismatch", name);
        }
    }

    #[test]
    fn kernels_agree_on_pattern((a, b) in arb_mult_pair()) {
        // Positive inputs -> no cancellation -> identical patterns.
        let c1 = heap::multiply(&a, &b);
        let c2 = hash::multiply(&a, &b);
        let c3 = spa::multiply(&a, &b);
        prop_assert_eq!(c1.nnz(), c2.nnz());
        prop_assert_eq!(&c1.colptr, &c2.colptr);
        prop_assert_eq!(&c1.rowidx, &c2.rowidx);
        prop_assert_eq!(&c2.colptr, &c3.colptr);
        prop_assert_eq!(&c2.rowidx, &c3.rowidx);
    }

    #[test]
    fn symbolic_counts_are_exact((a, b) in arb_mult_pair()) {
        let c = hash::multiply(&a, &b);
        let counts = symbolic::output_counts(&a, &b);
        prop_assert_eq!(counts.len(), c.ncols());
        for (j, &cnt) in counts.iter().enumerate() {
            prop_assert_eq!(cnt, c.col_nnz(j));
        }
    }

    #[test]
    fn flops_bounds_output((a, b) in arb_mult_pair()) {
        let f = crate::analysis::flops(&a, &b);
        let nnz = symbolic::output_nnz(&a, &b);
        prop_assert!(nnz <= f, "output nnz can never exceed flops");
    }

    #[test]
    fn estimator_is_finite_and_nonnegative((a, b) in arb_mult_pair()) {
        let e = crate::estimate::CohenEstimator::new(5, 99);
        let ests = e.estimate_columns(&a, &b);
        prop_assert_eq!(ests.len(), b.ncols());
        for (j, &est) in ests.iter().enumerate() {
            prop_assert!(est.is_finite() && est >= 0.0, "col {} estimate {}", j, est);
        }
        // Columns with provably empty output estimate exactly zero.
        let counts = symbolic::output_counts(&a, &b);
        for j in 0..b.ncols() {
            if counts[j] == 0 {
                prop_assert_eq!(ests[j], 0.0);
            }
        }
    }

    #[test]
    fn multiply_auto_correct((a, b) in arb_mult_pair()) {
        let (c, analysis, _) = crate::hybrid::multiply_auto(&a, &b);
        prop_assert!(c.max_abs_diff(&dense_reference(&a, &b)) < 1e-9);
        prop_assert_eq!(analysis.nnz_out, c.nnz() as u64);
    }
}
