//! Hash-assisted column-by-column SpGEMM (Nagasaka, Matsuoka, Azad, Buluç —
//! ICPP Workshops 2018), the CPU kernel the paper integrates in §VI.
//!
//! Each worker owns one open-addressing table that persists across all the
//! output columns it processes; the table is sized once to the largest
//! per-column `flops` it will see and reset in `O(touched)` between
//! columns. Accumulation is `O(1)` expected per product — no `lg` factor —
//! which is why hash accumulation dominates heaps when the compression
//! factor `cf = flops/nnz(C)` is large, the regime of the expensive MCL
//! iterations. The output column is sorted afterwards (MCL needs sorted
//! columns for merging and pruning).

use crate::analysis::flops_per_column;
use crate::assemble::build_csc_parallel_scratch;
use hipmcl_sparse::{Csc, Idx, PlusTimes, Semiring, Value};
use rayon::prelude::*;

const EMPTY: Idx = Idx::MAX;

/// Linear-probing accumulation table reused across columns by one worker.
#[derive(Clone)]
pub(crate) struct HashScratch<T> {
    keys: Vec<Idx>,
    vals: Vec<T>,
    /// Slots touched by the current column, for O(touched) reset.
    touched: Vec<u32>,
    mask: usize,
}

impl<T: Value> HashScratch<T> {
    pub(crate) fn new() -> Self {
        Self {
            keys: Vec::new(),
            vals: Vec::new(),
            touched: Vec::new(),
            mask: 0,
        }
    }

    /// Ensures capacity for `n` distinct keys at ≤ 50 % load.
    pub(crate) fn reserve(&mut self, n: usize) {
        let want = (2 * n.max(1)).next_power_of_two();
        if self.keys.len() < want {
            self.keys = vec![EMPTY; want];
            // Placeholder only: every slot's value is overwritten on first
            // touch, so no semiring identity is needed here.
            self.vals = vec![T::default(); want];
            self.mask = want - 1;
        }
    }

    #[inline]
    fn slot_of(&self, key: Idx) -> usize {
        // Fibonacci hashing spreads consecutive row ids well.
        ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    /// Accumulates `val` into `key`'s slot with the semiring's addition,
    /// inserting on first touch.
    #[inline]
    pub(crate) fn upsert<S: Semiring<Elem = T>>(&mut self, _sr: S, key: Idx, val: T) {
        let mut s = self.slot_of(key);
        loop {
            let k = self.keys[s];
            if k == key {
                self.vals[s] = S::add(self.vals[s], val);
                return;
            }
            if k == EMPTY {
                self.keys[s] = key;
                self.vals[s] = val;
                self.touched.push(s as u32);
                return;
            }
            s = (s + 1) & self.mask;
        }
    }

    /// Inserts `key` if absent (symbolic pass); returns `true` on insert.
    #[inline]
    pub(crate) fn insert_key(&mut self, key: Idx) -> bool {
        let mut s = self.slot_of(key);
        loop {
            let k = self.keys[s];
            if k == key {
                return false;
            }
            if k == EMPTY {
                self.keys[s] = key;
                self.touched.push(s as u32);
                return true;
            }
            s = (s + 1) & self.mask;
        }
    }

    /// Number of distinct keys currently stored.
    pub(crate) fn len(&self) -> usize {
        self.touched.len()
    }

    /// Drains `(key, val)` pairs sorted by key into the output slices and
    /// resets the table.
    pub(crate) fn drain_sorted_into(&mut self, rows: &mut [Idx], vals: &mut [T]) {
        debug_assert_eq!(rows.len(), self.touched.len());
        let mut pairs: Vec<(Idx, T)> = self
            .touched
            .iter()
            .map(|&s| (self.keys[s as usize], self.vals[s as usize]))
            .collect();
        pairs.sort_unstable_by_key(|&(r, _)| r);
        for (i, (r, v)) in pairs.into_iter().enumerate() {
            rows[i] = r;
            vals[i] = v;
        }
        self.reset();
    }

    /// Clears touched slots in `O(touched)`.
    pub(crate) fn reset(&mut self) {
        for &s in &self.touched {
            self.keys[s as usize] = EMPTY;
        }
        self.touched.clear();
    }
}

/// Multiplies `C = A · B` with hash accumulation in the given semiring
/// (two-phase: symbolic column counts, then numeric fill with per-worker
/// reused tables).
pub fn multiply_in<S: Semiring>(s: S, a: &Csc<S::Elem>, b: &Csc<S::Elem>) -> Csc<S::Elem> {
    let fpc = flops_per_column(a, b);
    multiply_with_flops_in(s, a, b, &fpc)
}

/// [`multiply_in`] with the numeric plus-times semiring — MCL's default.
pub fn multiply<T: Value>(a: &Csc<T>, b: &Csc<T>) -> Csc<T>
where
    PlusTimes<T>: Semiring<Elem = T>,
{
    multiply_in(PlusTimes::new(), a, b)
}

/// [`multiply_in`] when the per-column flops are already known (the SUMMA
/// layer computes them once for estimation and reuses them here).
pub fn multiply_with_flops_in<S: Semiring>(
    sr: S,
    a: &Csc<S::Elem>,
    b: &Csc<S::Elem>,
    fpc: &[u64],
) -> Csc<S::Elem> {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");
    assert_eq!(fpc.len(), b.ncols());

    // Symbolic: exact output count per column.
    let counts: Vec<usize> = (0..b.ncols())
        .into_par_iter()
        .map_with(HashScratch::<S::Elem>::new(), |scratch, j| {
            symbolic_column(a, b, j, fpc[j] as usize, scratch)
        })
        .collect();

    build_csc_parallel_scratch(
        a.nrows(),
        b.ncols(),
        &counts,
        HashScratch::<S::Elem>::new(),
        |scratch, j, rows_out, vals_out| {
            scratch.reserve(fpc[j] as usize);
            for (l, &k) in b.col_rows(j).iter().enumerate() {
                let bv = b.col_vals(j)[l];
                let k = k as usize;
                let (ar, av) = (a.col_rows(k), a.col_vals(k));
                for (idx, &r) in ar.iter().enumerate() {
                    scratch.upsert(sr, r, S::mul(av[idx], bv));
                }
            }
            scratch.drain_sorted_into(rows_out, vals_out);
        },
    )
}

/// [`multiply_with_flops_in`] with the plus-times semiring.
pub fn multiply_with_flops<T: Value>(a: &Csc<T>, b: &Csc<T>, fpc: &[u64]) -> Csc<T>
where
    PlusTimes<T>: Semiring<Elem = T>,
{
    multiply_with_flops_in(PlusTimes::new(), a, b, fpc)
}

/// Exact `nnz(C_{*j})` via key insertion; leaves the scratch reset.
fn symbolic_column<T: Value>(
    a: &Csc<T>,
    b: &Csc<T>,
    j: usize,
    flops_j: usize,
    scratch: &mut HashScratch<T>,
) -> usize {
    scratch.reserve(flops_j);
    for &k in b.col_rows(j) {
        for &r in a.col_rows(k as usize) {
            scratch.insert_key(r);
        }
    }
    let n = scratch.len();
    scratch.reset();
    n
}

/// Exact per-column output counts (the "symbolic SpGEMM" of the paper's
/// exact memory estimator). Shares the kernel with [`multiply`].
pub fn symbolic_counts<T: Value>(a: &Csc<T>, b: &Csc<T>) -> Vec<usize> {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");
    let fpc = flops_per_column(a, b);
    (0..b.ncols())
        .into_par_iter()
        .map_with(HashScratch::<T>::new(), |scratch, j| {
            symbolic_column(a, b, j, fpc[j] as usize, scratch)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{dense_reference, random_csc};

    #[test]
    fn scratch_upsert_accumulates() {
        let mut s = HashScratch::<f64>::new();
        s.reserve(4);
        s.upsert(PlusTimes::<f64>::new(), 7, 1.0);
        s.upsert(PlusTimes::<f64>::new(), 3, 2.0);
        s.upsert(PlusTimes::<f64>::new(), 7, 0.5);
        assert_eq!(s.len(), 2);
        let mut rows = vec![0; 2];
        let mut vals = vec![0.0; 2];
        s.drain_sorted_into(&mut rows, &mut vals);
        assert_eq!(rows, vec![3, 7]);
        assert_eq!(vals, vec![2.0, 1.5]);
        assert_eq!(s.len(), 0, "drain resets");
    }

    #[test]
    fn scratch_insert_key_counts_distinct() {
        let mut s = HashScratch::<f64>::new();
        s.reserve(8);
        assert!(s.insert_key(1));
        assert!(s.insert_key(2));
        assert!(!s.insert_key(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn scratch_survives_collisions() {
        let mut s = HashScratch::<f64>::new();
        s.reserve(2); // tiny table, forced probing
        for k in 0..4u32 {
            s.upsert(PlusTimes::<f64>::new(), k, k as f64);
        }
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn identity_times_identity() {
        let i = Csc::<f64>::identity(5);
        assert_eq!(multiply(&i, &i), i);
    }

    #[test]
    fn matches_dense_reference() {
        let a = random_csc(10, 8, 30, 1);
        let b = random_csc(8, 6, 24, 2);
        let c = multiply(&a, &b);
        c.assert_valid();
        assert!(c.max_abs_diff(&dense_reference(&a, &b)) < 1e-9);
    }

    #[test]
    fn matches_heap_kernel() {
        let a = random_csc(30, 30, 300, 9);
        let c_hash = multiply(&a, &a);
        let c_heap = crate::heap::multiply(&a, &a);
        assert!(c_hash.max_abs_diff(&c_heap) < 1e-9);
        assert_eq!(c_hash.nnz(), c_heap.nnz());
    }

    #[test]
    fn symbolic_counts_match_numeric() {
        let a = random_csc(20, 20, 120, 4);
        let counts = symbolic_counts(&a, &a);
        let c = multiply(&a, &a);
        let got: Vec<usize> = (0..c.ncols()).map(|j| c.col_nnz(j)).collect();
        assert_eq!(counts, got);
    }

    #[test]
    fn empty_matrices() {
        let a = Csc::<f64>::zero(3, 4);
        let b = Csc::<f64>::zero(4, 2);
        let c = multiply(&a, &b);
        assert_eq!(c.nnz(), 0);
    }
}
