//! Shared test helpers: seeded random matrices and a dense reference
//! multiply that the sparse kernels are validated against.

use hipmcl_sparse::{Csc, Idx, Triples};
use rand::{Rng, SeedableRng};

/// Random `m × n` CSC with ~`nnz` entries (duplicates collapse) and
/// positive values in `[0.5, 1.5)` — positivity avoids cancellation so
/// kernels can be compared by pattern as well as value.
pub fn random_csc(m: usize, n: usize, nnz: usize, seed: u64) -> Csc<f64> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut t = Triples::new(m, n);
    for _ in 0..nnz {
        t.push(
            rng.gen_range(0..m) as Idx,
            rng.gen_range(0..n) as Idx,
            rng.gen_range(0.5..1.5),
        );
    }
    Csc::from_triples(&t)
}

/// Dense `O(n³)`-style reference product, for small validation cases only.
pub fn dense_reference(a: &Csc<f64>, b: &Csc<f64>) -> Csc<f64> {
    assert_eq!(a.ncols(), b.nrows());
    let (m, n, k) = (a.nrows(), b.ncols(), a.ncols());
    let da = a.to_dense();
    let db = b.to_dense();
    let mut dc = vec![0.0f64; m * n];
    for j in 0..n {
        for l in 0..k {
            let bv = db[j * k + l];
            if bv == 0.0 {
                continue;
            }
            for i in 0..m {
                dc[j * m + i] += da[l * m + i] * bv;
            }
        }
    }
    Csc::from_dense(m, n, &dc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_csc_is_valid_and_seed_stable() {
        let a = random_csc(10, 10, 40, 1);
        a.assert_valid();
        assert_eq!(a, random_csc(10, 10, 40, 1));
        assert_ne!(a, random_csc(10, 10, 40, 2));
    }

    #[test]
    fn dense_reference_identity() {
        let i = Csc::<f64>::identity(4);
        let a = random_csc(4, 4, 10, 3);
        assert!(dense_reference(&i, &a).max_abs_diff(&a) < 1e-12);
        assert!(dense_reference(&a, &i).max_abs_diff(&a) < 1e-12);
    }
}
