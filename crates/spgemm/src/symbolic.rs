//! Exact symbolic SpGEMM: the structure (or just the size) of `A·B` without
//! materializing values.
//!
//! This is the *exact* memory estimator of original HipMCL (§V): it costs
//! `O(flops)` — as much arithmetic as the numeric multiply minus the value
//! work — which is why the paper replaces it with Cohen's probabilistic
//! estimator for high-`cf` iterations and keeps it only when `cf` is small.

use hipmcl_sparse::{Csc, Value};

/// Exact `nnz(A·B)` per output column. Hash-based, `O(flops)` total.
pub fn output_counts<T: Value>(a: &Csc<T>, b: &Csc<T>) -> Vec<usize> {
    crate::hash::symbolic_counts(a, b)
}

/// Exact `nnz(A·B)`.
pub fn output_nnz<T: Value>(a: &Csc<T>, b: &Csc<T>) -> u64 {
    output_counts(a, b).iter().map(|&c| c as u64).sum()
}

/// Bytes needed to hold `A·B` in CSC with `f64` values — the quantity the
/// phase planner compares against per-process available memory.
pub fn output_bytes<T: Value>(a: &Csc<T>, b: &Csc<T>) -> u64 {
    let nnz = output_nnz(a, b);
    csc_bytes(nnz, b.ncols() as u64)
}

/// CSC memory footprint for a given `nnz` and column count (f64 values,
/// u32 row indices, usize column pointers).
pub fn csc_bytes(nnz: u64, ncols: u64) -> u64 {
    nnz * (std::mem::size_of::<f64>() as u64 + std::mem::size_of::<hipmcl_sparse::Idx>() as u64)
        + (ncols + 1) * std::mem::size_of::<usize>() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_csc;

    #[test]
    fn counts_match_numeric_product() {
        let a = random_csc(18, 18, 90, 77);
        let c = crate::hash::multiply(&a, &a);
        assert_eq!(output_nnz(&a, &a), c.nnz() as u64);
        let counts = output_counts(&a, &a);
        for (j, &cnt) in counts.iter().enumerate() {
            assert_eq!(cnt, c.col_nnz(j));
        }
    }

    #[test]
    fn bytes_formula() {
        assert_eq!(csc_bytes(0, 0), 8);
        assert_eq!(csc_bytes(10, 4), 10 * 12 + 5 * 8);
    }

    #[test]
    fn identity_output_counts() {
        let i = Csc::<f64>::identity(7);
        assert_eq!(output_counts(&i, &i), vec![1; 7]);
    }
}
