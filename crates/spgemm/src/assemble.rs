//! Shared two-phase output assembly for the column-parallel SpGEMM kernels.
//!
//! Phase 1 (symbolic or counting) yields per-column output sizes; this
//! module turns them into a column pointer array and lets the numeric phase
//! fill disjoint per-column output slices in parallel without extra
//! allocation or copying.

use hipmcl_sparse::csc::counts_to_colptr;
use hipmcl_sparse::{Csc, Idx, Value};
use rayon::prelude::*;

/// Builds a CSC matrix by filling each column's slice in parallel.
///
/// `counts[j]` must be the exact number of entries `fill` writes for column
/// `j`. `fill(j, rows, vals)` receives the column's output slices (length
/// `counts[j]`) and must write all of them, with strictly increasing rows.
pub fn build_csc_parallel<T, F>(nrows: usize, ncols: usize, counts: &[usize], fill: F) -> Csc<T>
where
    T: Value,
    F: Fn(usize, &mut [Idx], &mut [T]) + Sync,
{
    debug_assert_eq!(counts.len(), ncols);
    let colptr = counts_to_colptr(counts);
    let nnz = colptr[ncols];
    let mut rowidx = vec![0 as Idx; nnz];
    let mut vals = vec![T::default(); nnz];

    // Split the flat arrays into disjoint per-column chunks. `split_at_mut`
    // in a fold keeps this entirely safe.
    let row_chunks = split_by_colptr(&mut rowidx, &colptr);
    let val_chunks = split_by_colptr(&mut vals, &colptr);
    row_chunks
        .into_par_iter()
        .zip_eq(val_chunks)
        .enumerate()
        .for_each(|(j, (rows, vals))| fill(j, rows, vals));

    Csc::from_parts(nrows, ncols, colptr, rowidx, vals)
}

/// Like [`build_csc_parallel`], but threads a clonable per-worker scratch
/// value through the fill closure (rayon `for_each_with`), so hash tables
/// and dense accumulators are reused across the columns a worker processes
/// instead of being reallocated per column — the Nagasaka CPU-SpGEMM trick
/// of one long-lived table per thread.
pub fn build_csc_parallel_scratch<T, S, F>(
    nrows: usize,
    ncols: usize,
    counts: &[usize],
    scratch: S,
    fill: F,
) -> Csc<T>
where
    T: Value,
    S: Clone + Send,
    F: Fn(&mut S, usize, &mut [Idx], &mut [T]) + Sync + Send,
{
    debug_assert_eq!(counts.len(), ncols);
    let colptr = counts_to_colptr(counts);
    let nnz = colptr[ncols];
    let mut rowidx = vec![0 as Idx; nnz];
    let mut vals = vec![T::default(); nnz];

    let row_chunks = split_by_colptr(&mut rowidx, &colptr);
    let val_chunks = split_by_colptr(&mut vals, &colptr);
    row_chunks
        .into_par_iter()
        .zip_eq(val_chunks)
        .enumerate()
        .for_each_with(scratch, |s, (j, (rows, vals))| fill(s, j, rows, vals));

    Csc::from_parts(nrows, ncols, colptr, rowidx, vals)
}

/// Splits `data` into `colptr.len() - 1` disjoint mutable chunks.
fn split_by_colptr<'a, T>(data: &'a mut [T], colptr: &[usize]) -> Vec<&'a mut [T]> {
    let mut chunks = Vec::with_capacity(colptr.len() - 1);
    let mut rest = data;
    let mut pos = 0usize;
    for w in colptr.windows(2) {
        let len = w[1] - w[0];
        debug_assert_eq!(w[0], pos);
        let (head, tail) = rest.split_at_mut(len);
        chunks.push(head);
        rest = tail;
        pos += len;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_by_colptr_disjoint_cover() {
        let mut data = vec![0u32; 6];
        let colptr = vec![0usize, 2, 2, 6];
        let chunks = split_by_colptr(&mut data, &colptr);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(chunks[1].len(), 0);
        assert_eq!(chunks[2].len(), 4);
    }

    #[test]
    fn build_csc_parallel_fills_columns() {
        // 3 columns with 1, 0, 2 entries.
        let m: Csc<f64> = build_csc_parallel(4, 3, &[1, 0, 2], |j, rows, vals| match j {
            0 => {
                rows[0] = 2;
                vals[0] = 5.0;
            }
            2 => {
                rows.copy_from_slice(&[0, 3]);
                vals.copy_from_slice(&[1.0, 2.0]);
            }
            _ => {}
        });
        m.assert_valid();
        assert_eq!(m.get(2, 0), Some(5.0));
        assert_eq!(m.get(3, 2), Some(2.0));
        assert_eq!(m.nnz(), 3);
    }
}
