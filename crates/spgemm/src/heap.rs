//! Heap-assisted column-by-column SpGEMM — the kernel of *original* HipMCL.
//!
//! For each output column `C_{*j}`, a min-heap holds one cursor per column
//! `A_{*k}` with `k ∈ inds(B_{*j})`. Popping the minimum row index merges
//! the scaled columns in sorted order while accumulating duplicates; the
//! output column is produced already sorted. Work is
//! `O(flops · lg nnz(B_{*j}))` — excellent when columns of `B` are short
//! (≈10 nonzeros, sparse graph processing) but the `lg` factor and the
//! pointer-chasing heap hurt at MCL densities (≈1000 nonzeros per column),
//! which is what §VI replaces with hash accumulation.

use crate::assemble::build_csc_parallel;
use hipmcl_sparse::{Csc, Idx, PlusTimes, Semiring, Value};
use rayon::prelude::*;

/// One merge cursor: the current head of a scaled column of `A`.
/// Ordered by `row` (then list id for determinism) as a *min*-heap entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Cursor {
    row: Idx,
    list: u32,
}

impl Ord for Cursor {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for min-heap on BinaryHeap (which is a max-heap).
        other.row.cmp(&self.row).then(other.list.cmp(&self.list))
    }
}

impl PartialOrd for Cursor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Multiplies `C = A · B` with heap accumulation in the given semiring,
/// column-parallel.
pub fn multiply_in<S: Semiring>(s: S, a: &Csc<S::Elem>, b: &Csc<S::Elem>) -> Csc<S::Elem> {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");

    // Pass 1: exact per-column output sizes via a structure-only merge.
    // (Heap SpGEMM traditionally runs single-pass with guessed output size;
    // we use the common two-pass variant so assembly is allocation-exact,
    // matching what CombBLAS does for its local multiply.)
    let counts: Vec<usize> = (0..b.ncols())
        .into_par_iter()
        .map(|j| merge_column(s, a, b, j, |_r, _v| {}))
        .collect();

    build_csc_parallel(a.nrows(), b.ncols(), &counts, |j, rows_out, vals_out| {
        let mut w = 0usize;
        merge_column(s, a, b, j, |r, v| {
            rows_out[w] = r;
            vals_out[w] = v;
            w += 1;
        });
        debug_assert_eq!(w, rows_out.len());
    })
}

/// [`multiply_in`] with the numeric plus-times semiring — MCL's default.
pub fn multiply<T: Value>(a: &Csc<T>, b: &Csc<T>) -> Csc<T>
where
    PlusTimes<T>: Semiring<Elem = T>,
{
    multiply_in(PlusTimes::new(), a, b)
}

/// Heap-merges the scaled A-columns selected by `B_{*j}`, invoking `emit`
/// once per distinct output row (in increasing row order) with the
/// accumulated value. Returns the number of emitted entries.
fn merge_column<S: Semiring>(
    _s: S,
    a: &Csc<S::Elem>,
    b: &Csc<S::Elem>,
    j: usize,
    mut emit: impl FnMut(Idx, S::Elem),
) -> usize {
    let bk = b.col_rows(j);
    let bv = b.col_vals(j);
    if bk.is_empty() {
        return 0;
    }

    // positions[l] = how far we've consumed A column bk[l].
    let mut positions: Vec<usize> = vec![0; bk.len()];
    let mut heap = std::collections::BinaryHeap::with_capacity(bk.len());
    for (l, &k) in bk.iter().enumerate() {
        let rows = a.col_rows(k as usize);
        if !rows.is_empty() {
            heap.push(Cursor {
                row: rows[0],
                list: l as u32,
            });
        }
    }

    let mut count = 0usize;
    let mut cur_row: Option<Idx> = None;
    let mut acc = S::ZERO;
    while let Some(Cursor { row, list }) = heap.pop() {
        let l = list as usize;
        let k = bk[l] as usize;
        let pos = positions[l];
        let contrib = S::mul(a.col_vals(k)[pos], bv[l]);
        match cur_row {
            Some(r) if r == row => acc = S::add(acc, contrib),
            Some(r) => {
                emit(r, acc);
                count += 1;
                cur_row = Some(row);
                acc = contrib;
            }
            None => {
                cur_row = Some(row);
                acc = contrib;
            }
        }
        // Advance this cursor.
        positions[l] += 1;
        let rows = a.col_rows(k);
        if positions[l] < rows.len() {
            heap.push(Cursor {
                row: rows[positions[l]],
                list,
            });
        }
    }
    if let Some(r) = cur_row {
        emit(r, acc);
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{dense_reference, random_csc};

    #[test]
    fn cursor_ordering_is_min_heap() {
        let mut h = std::collections::BinaryHeap::new();
        h.push(Cursor { row: 5, list: 0 });
        h.push(Cursor { row: 1, list: 1 });
        h.push(Cursor { row: 3, list: 2 });
        assert_eq!(h.pop().unwrap().row, 1);
        assert_eq!(h.pop().unwrap().row, 3);
        assert_eq!(h.pop().unwrap().row, 5);
    }

    #[test]
    fn identity_times_identity() {
        let i = Csc::<f64>::identity(6);
        assert_eq!(multiply(&i, &i), i);
    }

    #[test]
    fn matches_dense_reference_small() {
        let a = random_csc(9, 7, 25, 11);
        let b = random_csc(7, 5, 18, 22);
        let c = multiply(&a, &b);
        c.assert_valid();
        assert!(c.max_abs_diff(&dense_reference(&a, &b)) < 1e-9);
    }

    #[test]
    fn matches_dense_reference_square_dense() {
        let a = random_csc(12, 12, 120, 3);
        let c = multiply(&a, &a);
        c.assert_valid();
        assert!(c.max_abs_diff(&dense_reference(&a, &a)) < 1e-9);
    }

    #[test]
    fn empty_operands() {
        let a = Csc::<f64>::zero(4, 3);
        let b = Csc::<f64>::zero(3, 2);
        let c = multiply(&a, &b);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.nrows(), 4);
        assert_eq!(c.ncols(), 2);
    }

    #[test]
    fn rectangular_chain() {
        let a = random_csc(3, 20, 30, 5);
        let b = random_csc(20, 4, 30, 6);
        let c = multiply(&a, &b);
        assert!(c.max_abs_diff(&dense_reference(&a, &b)) < 1e-9);
    }
}
