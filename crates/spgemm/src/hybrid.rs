//! CPU kernel selection by `flops` and compression factor — the paper's
//! "recipe" (§I, §VI): benchmark the candidates, find the density regimes
//! where each dominates, then choose per multiplication instance.
//!
//! On CPU the rule reduces to: heaps win when `cf` is small (little
//! accumulation, the heap's `lg` factor is paid on few elements and its
//! cache behaviour is better), hash tables win when `cf` is large (every
//! product hits an existing accumulator slot in `O(1)`). The GPU-inclusive
//! selection — including the `flops` threshold that decides whether a
//! multiplication is big enough to saturate a device at all — lives in
//! `hipmcl-gpu::select`, layered on top of this.

use crate::analysis::MultAnalysis;
use hipmcl_sparse::{Csc, PlusTimes, Semiring, Value};

/// CPU-side SpGEMM kernels available to the selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CpuAlgo {
    /// Heap (priority queue) accumulation — original HipMCL.
    Heap,
    /// Hash-table accumulation — Nagasaka et al., the §VI replacement.
    Hash,
    /// Dense sparse accumulator — benchmark baseline.
    Spa,
}

impl CpuAlgo {
    /// Human-readable name matching the paper's plot labels.
    pub fn name(self) -> &'static str {
        match self {
            CpuAlgo::Heap => "cpu-heap",
            CpuAlgo::Hash => "cpu-hash",
            CpuAlgo::Spa => "cpu-spa",
        }
    }

    /// Runs the selected kernel in the given semiring.
    pub fn multiply_in<S: Semiring>(
        self,
        s: S,
        a: &Csc<S::Elem>,
        b: &Csc<S::Elem>,
    ) -> Csc<S::Elem> {
        match self {
            CpuAlgo::Heap => crate::heap::multiply_in(s, a, b),
            CpuAlgo::Hash => crate::hash::multiply_in(s, a, b),
            CpuAlgo::Spa => crate::spa::multiply_in(s, a, b),
        }
    }

    /// Runs the selected kernel with the plus-times semiring.
    pub fn multiply<T: Value>(self, a: &Csc<T>, b: &Csc<T>) -> Csc<T>
    where
        PlusTimes<T>: Semiring<Elem = T>,
    {
        self.multiply_in(PlusTimes::new(), a, b)
    }

    /// Runs the kernel and reports the realized compression factor
    /// `flops / nnz(C)` — the quantity the cost models price the launch
    /// with. Async executors wrap this to turn a CPU kernel into a timed
    /// launch without re-deriving `cf`. An empty product with zero flops
    /// reports 1 (nothing happened, by convention); an empty product with
    /// `flops > 0` means *every* partial product cancelled — compression
    /// is effectively infinite, reported as `flops` itself (the largest
    /// finite value the ratio could have taken at `nnz = 1`) so the value
    /// stays usable in the rate models' denominators.
    pub fn multiply_measured<T: Value>(self, a: &Csc<T>, b: &Csc<T>, flops: u64) -> (Csc<T>, f64)
    where
        PlusTimes<T>: Semiring<Elem = T>,
    {
        self.multiply_measured_in(PlusTimes::new(), a, b, flops)
    }

    /// [`CpuAlgo::multiply_measured`] in an arbitrary semiring.
    pub fn multiply_measured_in<S: Semiring>(
        self,
        s: S,
        a: &Csc<S::Elem>,
        b: &Csc<S::Elem>,
        flops: u64,
    ) -> (Csc<S::Elem>, f64) {
        let c = self.multiply_in(s, a, b);
        let cf = match (c.nnz(), flops) {
            (0, 0) => 1.0,
            (0, f) => f as f64,
            (nnz, f) => f as f64 / nnz as f64,
        };
        (c, cf)
    }
}

/// `cf` threshold below which heaps beat hash tables on CPU.
///
/// Benchmarked on this implementation (see `hipmcl-bench/benches/
/// local_spgemm.rs`); the paper reports the same qualitative crossover
/// ("for small cf values, the heaps show themselves to be slightly more
/// effective while for large cf values hash tables perform significantly
/// better", §VII-B).
pub const HEAP_HASH_CF_CROSSOVER: f64 = 2.0;

/// Picks the CPU kernel for a multiplication with the given analysis.
pub fn select_cpu(analysis: &MultAnalysis) -> CpuAlgo {
    if analysis.cf() < HEAP_HASH_CF_CROSSOVER {
        CpuAlgo::Heap
    } else {
        CpuAlgo::Hash
    }
}

/// Analyses `A·B` (exact symbolic count) and multiplies with the selected
/// kernel in the given semiring. Returns the product and the analysis for
/// instrumentation.
pub fn multiply_auto_in<S: Semiring>(
    s: S,
    a: &Csc<S::Elem>,
    b: &Csc<S::Elem>,
) -> (Csc<S::Elem>, MultAnalysis, CpuAlgo) {
    let flops = crate::analysis::flops(a, b);
    let nnz_out = crate::symbolic::output_nnz(a, b);
    let analysis = MultAnalysis { flops, nnz_out };
    let algo = select_cpu(&analysis);
    (algo.multiply_in(s, a, b), analysis, algo)
}

/// [`multiply_auto_in`] with the plus-times semiring.
pub fn multiply_auto<T: Value>(a: &Csc<T>, b: &Csc<T>) -> (Csc<T>, MultAnalysis, CpuAlgo)
where
    PlusTimes<T>: Semiring<Elem = T>,
{
    multiply_auto_in(PlusTimes::new(), a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_csc;

    #[test]
    fn low_cf_prefers_heap() {
        let a = MultAnalysis {
            flops: 100,
            nnz_out: 90,
        };
        assert_eq!(select_cpu(&a), CpuAlgo::Heap);
    }

    #[test]
    fn high_cf_prefers_hash() {
        let a = MultAnalysis {
            flops: 10_000,
            nnz_out: 100,
        };
        assert_eq!(select_cpu(&a), CpuAlgo::Hash);
    }

    #[test]
    fn all_algos_agree() {
        let a = random_csc(20, 20, 150, 2);
        let heap = CpuAlgo::Heap.multiply(&a, &a);
        let hash = CpuAlgo::Hash.multiply(&a, &a);
        let spa = CpuAlgo::Spa.multiply(&a, &a);
        assert!(heap.max_abs_diff(&hash) < 1e-9);
        assert!(heap.max_abs_diff(&spa) < 1e-9);
    }

    #[test]
    fn multiply_auto_returns_consistent_analysis() {
        let a = random_csc(15, 15, 60, 4);
        let (c, analysis, _) = multiply_auto(&a, &a);
        assert_eq!(analysis.nnz_out, c.nnz() as u64);
        assert!(analysis.flops >= analysis.nnz_out);
    }

    #[test]
    fn multiply_measured_reports_realized_cf() {
        let a = random_csc(18, 18, 120, 5);
        let flops = crate::analysis::flops(&a, &a);
        let (c, cf) = CpuAlgo::Hash.multiply_measured(&a, &a, flops);
        assert!(c.max_abs_diff(&CpuAlgo::Heap.multiply(&a, &a)) < 1e-9);
        assert!((cf - flops as f64 / c.nnz() as f64).abs() < 1e-12);
        // Empty product with zero flops: cf defaults to 1.
        let z = Csc::<f64>::zero(4, 4);
        let (c0, cf0) = CpuAlgo::Heap.multiply_measured(&z, &z, 0);
        assert_eq!(c0.nnz(), 0);
        assert_eq!(cf0, 1.0);
        // Empty product with positive flops (every partial product
        // cancelled): compression is effectively infinite — reported as
        // the finite stand-in `flops`, never 1.0 (the old bug, which
        // polluted realized-cf stats toward the heap regime).
        let (c7, cf7) = CpuAlgo::Heap.multiply_measured(&z, &z, 7);
        assert_eq!(c7.nnz(), 0);
        assert_eq!(cf7, 7.0);
    }

    #[test]
    fn fully_cancelled_product_routes_auto_dispatch_to_hash() {
        // flops > 0 with an empty output means infinite compression; the
        // dispatch comparison must land on the high-cf side (hash), not
        // default to the heap as the old cf = 1.0 convention did.
        let a = MultAnalysis {
            flops: 10,
            nnz_out: 0,
        };
        assert!(a.cf().is_infinite());
        assert_eq!(select_cpu(&a), CpuAlgo::Hash);
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(CpuAlgo::Hash.name(), "cpu-hash");
        assert_eq!(CpuAlgo::Heap.name(), "cpu-heap");
    }
}
