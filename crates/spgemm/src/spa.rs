//! Sparse-accumulator (SPA) SpGEMM — the classic Gilbert–Moler–Schreiber
//! formulation used by MATLAB and by Patwary et al. on multicore.
//!
//! Each worker owns a dense value array plus a generation-stamped occupancy
//! array of length `nrows(A)`, so resets are free (bump the generation).
//! Accumulation is a direct array write — the fastest accumulator when the
//! output columns are dense relative to `nrows`, but the `O(nrows)` scratch
//! per worker makes it memory-hungry for the large hypersparse blocks of
//! distributed MCL, which is why HipMCL prefers heaps/hashes. Included as
//! the third candidate accumulator for the selection benchmarks.

use crate::assemble::build_csc_parallel_scratch;
use hipmcl_sparse::{Csc, Idx, PlusTimes, Semiring, Value};
use rayon::prelude::*;

/// Dense accumulator with generation marking, reused across columns.
#[derive(Clone)]
struct SpaScratch<T> {
    vals: Vec<T>,
    stamp: Vec<u32>,
    gen: u32,
    rows: Vec<Idx>,
}

impl<T: Value> SpaScratch<T> {
    fn new(nrows: usize) -> Self {
        Self {
            // Placeholder only: slots are written before first read.
            vals: vec![T::default(); nrows],
            stamp: vec![0; nrows],
            gen: 0,
            rows: Vec::new(),
        }
    }

    #[inline]
    fn begin_column(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Wrapped: clear stamps once every 2^32 columns.
            self.stamp.fill(0);
            self.gen = 1;
        }
        self.rows.clear();
    }

    #[inline]
    fn accumulate<S: Semiring<Elem = T>>(&mut self, _s: S, r: Idx, v: T) {
        let ri = r as usize;
        if self.stamp[ri] == self.gen {
            self.vals[ri] = S::add(self.vals[ri], v);
        } else {
            self.stamp[ri] = self.gen;
            self.vals[ri] = v;
            self.rows.push(r);
        }
    }
}

/// Multiplies `C = A · B` with a dense sparse accumulator per worker, in
/// the given semiring.
pub fn multiply_in<S: Semiring>(sr: S, a: &Csc<S::Elem>, b: &Csc<S::Elem>) -> Csc<S::Elem> {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");

    // Symbolic pass: count distinct rows per output column.
    let counts: Vec<usize> = (0..b.ncols())
        .into_par_iter()
        .map_with(SpaScratch::<S::Elem>::new(a.nrows()), |s, j| {
            s.begin_column();
            for &k in b.col_rows(j) {
                for &r in a.col_rows(k as usize) {
                    if s.stamp[r as usize] != s.gen {
                        s.stamp[r as usize] = s.gen;
                        s.rows.push(r);
                    }
                }
            }
            s.rows.len()
        })
        .collect();

    build_csc_parallel_scratch(
        a.nrows(),
        b.ncols(),
        &counts,
        SpaScratch::<S::Elem>::new(a.nrows()),
        |s, j, rows_out, vals_out| {
            s.begin_column();
            for (l, &k) in b.col_rows(j).iter().enumerate() {
                let bv = b.col_vals(j)[l];
                let k = k as usize;
                let (ar, av) = (a.col_rows(k), a.col_vals(k));
                for (idx, &r) in ar.iter().enumerate() {
                    s.accumulate(sr, r, S::mul(av[idx], bv));
                }
            }
            s.rows.sort_unstable();
            for (i, &r) in s.rows.iter().enumerate() {
                rows_out[i] = r;
                vals_out[i] = s.vals[r as usize];
            }
        },
    )
}

/// [`multiply_in`] with the numeric plus-times semiring — MCL's default.
pub fn multiply<T: Value>(a: &Csc<T>, b: &Csc<T>) -> Csc<T>
where
    PlusTimes<T>: Semiring<Elem = T>,
{
    multiply_in(PlusTimes::new(), a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{dense_reference, random_csc};

    #[test]
    fn identity_times_identity() {
        let i = Csc::<f64>::identity(4);
        assert_eq!(multiply(&i, &i), i);
    }

    #[test]
    fn matches_dense_reference() {
        let a = random_csc(11, 9, 40, 31);
        let b = random_csc(9, 13, 35, 32);
        let c = multiply(&a, &b);
        c.assert_valid();
        assert!(c.max_abs_diff(&dense_reference(&a, &b)) < 1e-9);
    }

    #[test]
    fn matches_hash_kernel() {
        let a = random_csc(25, 25, 200, 8);
        let c_spa = multiply(&a, &a);
        let c_hash = crate::hash::multiply(&a, &a);
        assert!(c_spa.max_abs_diff(&c_hash) < 1e-9);
        assert_eq!(c_spa.nnz(), c_hash.nnz());
    }

    #[test]
    fn generation_wrap_is_safe() {
        let mut s = SpaScratch::<f64>::new(4);
        s.gen = u32::MAX - 1;
        s.begin_column(); // gen = MAX
        s.accumulate(PlusTimes::<f64>::new(), 2, 1.0);
        assert_eq!(s.rows, vec![2]);
        s.begin_column(); // wraps to 1 after clearing stamps
        assert_eq!(s.gen, 1);
        s.accumulate(PlusTimes::<f64>::new(), 2, 5.0);
        assert_eq!(s.vals[2], 5.0, "stale stamp must not leak");
    }

    #[test]
    fn empty_product() {
        let a = Csc::<f64>::zero(5, 5);
        let c = multiply(&a, &a);
        assert_eq!(c.nnz(), 0);
    }
}
