//! # hipmcl-rs
//!
//! A from-scratch Rust reproduction of *"Optimizing High Performance
//! Markov Clustering for Pre-Exascale Architectures"* (Selvitopi,
//! Hussain, Azad, Buluç — IPDPS 2020): the HipMCL distributed Markov
//! Cluster algorithm plus the paper's four optimizations — Pipelined
//! Sparse SUMMA with CPU–GPU overlap, binary merge, probabilistic memory
//! estimation, and hash-based CPU SpGEMM — on top of simulated-MPI and
//! simulated-GPU substrates (see `DESIGN.md` for the substitution
//! rationale).
//!
//! ## Quick start
//!
//! ```
//! use hipmcl::prelude::*;
//!
//! // A small protein-similarity-like network with planted families.
//! let net = hipmcl::workloads::protein::generate_protein_net(
//!     &ProteinNetConfig { n: 200, avg_degree: 14.0, ..Default::default() },
//! );
//! let graph = Csc::from_triples(&net.graph);
//!
//! // Serial MCL.
//! let result = cluster_serial(&graph, &MclConfig::testing(24));
//! assert!(result.converged);
//! assert!(result.num_clusters > 1);
//! ```
//!
//! Distributed runs go through [`comm::Universe::run`], which spawns the
//! simulated-MPI ranks; see `examples/quickstart.rs`.

/// Sparse-matrix substrate (formats, column ops, components, I/O).
pub use hipmcl_sparse as sparse;

/// Local SpGEMM kernels, symbolic multiplication, Cohen estimation.
pub use hipmcl_spgemm as spgemm;

/// Simulated-MPI runtime, process grids, machine models, virtual clocks.
pub use hipmcl_comm as comm;

/// Simulated GPUs and the bhsparse/nsparse/rmerge2 kernel analogues.
pub use hipmcl_gpu as gpu;

/// Distributed SpGEMM: Sparse SUMMA, pipelining, merging, estimation.
pub use hipmcl_summa as summa;

/// The MCL pipeline: serial reference and the distributed HipMCL driver.
pub use hipmcl_core as core;

/// Workload generators and the paper-network registry.
pub use hipmcl_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::comm::{MachineModel, ProcGrid, Universe};
    pub use crate::core::dist::cluster_distributed;
    pub use crate::core::{cluster_serial, MclConfig};
    pub use crate::gpu::multi::MultiGpu;
    pub use crate::sparse::{Csc, Triples};
    pub use crate::summa::DistMatrix;
    pub use crate::workloads::{Dataset, ProteinNetConfig};
}

pub use prelude::*;
